//! A minimal token-level lexer for Rust source.
//!
//! The rules in this crate match on *token* sequences, never on raw text,
//! so occurrences of a pattern inside string literals, comments or doc
//! comments can never produce (or mask) a finding.  The lexer is
//! deliberately small: it distinguishes identifiers, punctuation, literals
//! and comments, tracks line numbers, and understands the handful of
//! constructs that would otherwise derail tokenization — nested block
//! comments, raw strings with `#` fences, char literals vs. lifetimes.
//! It does not need to be a complete Rust grammar to be sound for that
//! purpose: anything it cannot classify becomes a one-character `Punct`.

/// What kind of lexeme a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `while`, `unwrap_or`, ...).
    Ident,
    /// Integer/float literal.
    Number,
    /// String literal (including raw strings), quotes included.
    Str,
    /// Char literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// `// ...` comment (including `///` and `//!` doc comments).
    LineComment,
    /// `/* ... */` comment (possibly nested).
    BlockComment,
    /// A single punctuation character (`{`, `.`, `#`, ...).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Lex `src` into tokens.  Never fails: unterminated literals or comments
/// simply run to end of input (the compiler, not the linter, reports those).
pub fn lex(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let push = |tokens: &mut Vec<Token>, kind, text: String, line| {
        tokens.push(Token { kind, text, line });
    };

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                push(
                    &mut tokens,
                    TokenKind::LineComment,
                    chars[start..i].iter().collect(),
                    line,
                );
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                push(
                    &mut tokens,
                    TokenKind::BlockComment,
                    chars[start..i].iter().collect(),
                    start_line,
                );
            }
            '"' => {
                let (text, consumed, newlines) = lex_string(&chars[i..]);
                push(&mut tokens, TokenKind::Str, text, line);
                line += newlines;
                i += consumed;
            }
            'r' | 'b' if is_raw_string_start(&chars[i..]) => {
                let (text, consumed, newlines) = lex_raw_string(&chars[i..]);
                push(&mut tokens, TokenKind::Str, text, line);
                line += newlines;
                i += consumed;
            }
            '\'' => {
                // Lifetime (`'a`) or char literal (`'x'`, `'\n'`).
                if is_lifetime(&chars[i..]) {
                    let start = i;
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    push(
                        &mut tokens,
                        TokenKind::Lifetime,
                        chars[start..i].iter().collect(),
                        line,
                    );
                } else {
                    let start = i;
                    i += 1;
                    while i < chars.len() {
                        if chars[i] == '\\' {
                            i += 2;
                            continue;
                        }
                        if chars[i] == '\'' {
                            i += 1;
                            break;
                        }
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    push(
                        &mut tokens,
                        TokenKind::Char,
                        chars[start..i.min(chars.len())].iter().collect(),
                        line,
                    );
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                push(
                    &mut tokens,
                    TokenKind::Ident,
                    chars[start..i].iter().collect(),
                    line,
                );
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    // `1..n` range: stop the number before the second dot
                    if chars[i] == '.' && chars.get(i + 1) == Some(&'.') {
                        break;
                    }
                    i += 1;
                }
                push(
                    &mut tokens,
                    TokenKind::Number,
                    chars[start..i].iter().collect(),
                    line,
                );
            }
            c => {
                push(&mut tokens, TokenKind::Punct, c.to_string(), line);
                i += 1;
            }
        }
    }
    tokens
}

/// Lex a plain `"..."` string starting at `chars[0] == '"'`.
/// Returns (text, chars consumed, newlines inside).
fn lex_string(chars: &[char]) -> (String, usize, u32) {
    let mut i = 1;
    let mut newlines = 0;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => {
                i += 1;
                break;
            }
            '\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    let i = i.min(chars.len());
    (chars[..i].iter().collect(), i, newlines)
}

/// Whether `chars` starts a raw (or byte/raw-byte) string: `r"`, `r#`,
/// `br"`, `b"`, `br#`.
fn is_raw_string_start(chars: &[char]) -> bool {
    let mut i = 0;
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    if chars.get(i) == Some(&'r') {
        i += 1;
        matches!(chars.get(i), Some(&'"') | Some(&'#'))
    } else {
        // plain byte string b"..."
        i == 1 && chars.get(i) == Some(&'"')
    }
}

/// Lex a raw/byte string starting at `chars[0]`.
fn lex_raw_string(chars: &[char]) -> (String, usize, u32) {
    let mut i = 0;
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    let raw = chars.get(i) == Some(&'r');
    if raw {
        i += 1;
    }
    let mut fences = 0;
    while chars.get(i) == Some(&'#') {
        fences += 1;
        i += 1;
    }
    // opening quote
    if chars.get(i) == Some(&'"') {
        i += 1;
    }
    if !raw {
        // plain byte string: same rules as a normal string
        let (text, consumed, newlines) = lex_string(&chars[i - 1..]);
        return (
            chars[..i - 1].iter().collect::<String>() + &text,
            i - 1 + consumed,
            newlines,
        );
    }
    let mut newlines = 0;
    while i < chars.len() {
        if chars[i] == '\n' {
            newlines += 1;
        }
        if chars[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0;
            while seen < fences && chars.get(j) == Some(&'#') {
                seen += 1;
                j += 1;
            }
            if seen == fences {
                i = j;
                break;
            }
        }
        i += 1;
    }
    let i = i.min(chars.len());
    (chars[..i].iter().collect(), i, newlines)
}

/// Whether a `'` begins a lifetime rather than a char literal: `'ident`
/// not followed by a closing quote (`'a'` is a char, `'a>` a lifetime).
fn is_lifetime(chars: &[char]) -> bool {
    let mut i = 1;
    if !chars
        .get(i)
        .map(|c| c.is_alphabetic() || *c == '_')
        .unwrap_or(false)
    {
        return false;
    }
    while chars
        .get(i)
        .map(|c| c.is_alphanumeric() || *c == '_')
        .unwrap_or(false)
    {
        i += 1;
    }
    chars.get(i) != Some(&'\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let toks = lex("fn main() {\n  x.y();\n}");
        assert!(toks[0].is_ident("fn"));
        assert!(toks[1].is_ident("main"));
        let dot = toks.iter().find(|t| t.is_punct('.')).unwrap();
        assert_eq!(dot.line, 2);
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let toks = kinds("let s = \"unwrap_or(false)\"; // unwrap_or\n/* unwrap_or */");
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap_or"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| matches!(k, TokenKind::LineComment | TokenKind::BlockComment))
                .count(),
            2
        );
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds("let s = r#\"a \" b\"#; x");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("a \" b")));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "x"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            2
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* a /* b */ c */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (TokenKind::Ident, "x".to_string()));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = kinds("for i in 0..10 {}");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "0"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "10"));
    }
}
