#![forbid(unsafe_code)]
//! # beas-lint
//!
//! Project-specific static analysis for the BEAS workspace: a self-contained
//! token-level lexer plus a catalog of invariant rules (`L001`..`L009`) that
//! mechanically enforce disciplines the compiler cannot see — propagated
//! predicate errors, canonicalized join/index keys, quota checkpoints in
//! blocking loops, storage mutation behind the maintenance facade, approved
//! sync primitives in concurrent code, justified `#[allow]`s,
//! `#![forbid(unsafe_code)]` crate roots, canonical hashing in columnar
//! kernels, and all product timing routed through `beas_obs::clock`.
//!
//! The rule catalog, the history behind each rule, and the suppression
//! syntax (`// beas-lint: allow(Lnnn) -- reason`) are documented in
//! `crates/lint/README.md`; the runnable *dynamic* counterparts the rules
//! point at are the `check_invariants()` methods on
//! `beas_storage::{Table, Database, ConstraintIndex}` and
//! `beas_core::BeasSystem`.
//!
//! Like the rand/proptest/criterion shims, this crate is dependency-free by
//! design: the build environment has no registry access, and the lint gate
//! must lint everything else in the workspace, including the shims'
//! consumers.

pub mod lexer;
pub mod rules;

pub use lexer::{lex, Token, TokenKind};
pub use rules::{lint_source, FileContext, Finding};

use std::path::{Path, PathBuf};

/// Every rule id the catalog enforces, in order.
pub const RULES: &[(&str, &str)] = &[
    ("L000", "malformed `beas-lint: allow(..)` suppression"),
    (
        "L001",
        "evaluation Results must propagate (no unwrap_or/ok on evaluate calls)",
    ),
    (
        "L002",
        "raw Value-keyed containers require beas_common::key canonicalization",
    ),
    (
        "L003",
        "blocking sort/aggregate/drain loops must checkpoint the session quota",
    ),
    (
        "L004",
        "storage mutation only via the storage crate or the maintenance facade",
    ),
    (
        "L005",
        "no static mut / non-approved sync primitives in concurrent code",
    ),
    ("L006", "every #[allow(..)] carries a justification comment"),
    ("L007", "non-shim crate roots carry #![forbid(unsafe_code)]"),
    (
        "L008",
        "columnar kernels hash via beas_common::key and reference the vectorized differential harness",
    ),
    (
        "L009",
        "raw Instant/SystemTime reads outside beas_obs; timing routes through beas_obs::clock",
    ),
];

/// Directory names never descended into: build output, the in-tree
/// dependency shims (vendored stand-ins, not project code), and the lint
/// fixture corpus (deliberately-broken snippets).
const SKIP_DIRS: &[&str] = &["target", "shims", "fixtures", ".git"];

/// Lint one file on disk.  `rel` is its workspace-relative path (used for
/// scoping rules and labeling findings).
pub fn lint_file(path: &Path, rel: &str) -> Result<Vec<Finding>, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let ctx = FileContext::from_path(rel);
    Ok(lint_source(&src, &ctx))
}

/// Walk the workspace rooted at `root` and lint every `.rs` file outside
/// the skipped directories (`target`, `shims`, `fixtures`, `.git`).
/// Findings come back sorted by (file, line, rule).
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files).map_err(|e| format!("walking {}: {e}", root.display()))?;
    files.sort();
    let mut findings = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(lint_file(&file, &rel)?);
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Render findings as a JSON array (stable field order, no dependencies).
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            f.rule,
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        ));
    }
    out.push_str(if findings.is_empty() { "]" } else { "\n]" });
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_escapes_and_is_stable() {
        let findings = vec![Finding {
            rule: "L001",
            file: "a/b.rs".into(),
            line: 3,
            message: "say \"no\"".into(),
        }];
        let json = findings_to_json(&findings);
        assert!(json.contains("\"rule\": \"L001\""));
        assert!(json.contains("say \\\"no\\\""));
        assert_eq!(findings_to_json(&[]), "[]");
    }

    #[test]
    fn file_context_classification() {
        assert!(FileContext::from_path("crates/core/src/lib.rs").is_crate_root);
        assert!(FileContext::from_path("src/lib.rs").is_crate_root);
        assert!(FileContext::from_path("crates/bench/src/bin/bench_gate.rs").is_crate_root);
        assert!(!FileContext::from_path("crates/shims/rand/src/lib.rs").is_crate_root);
        assert!(!FileContext::from_path("crates/core/src/system.rs").is_crate_root);
        assert!(FileContext::from_path("crates/service/tests/concurrency.rs").is_test_code);
        assert!(FileContext::from_path("examples/quickstart.rs").is_test_code);
        assert!(FileContext::from_path("crates/bench/benches/micro_ops.rs").is_test_code);
    }
}
