#![forbid(unsafe_code)]
//! `beas-lint` — the BEAS workspace static-analysis gate.
//!
//! ```text
//! beas-lint --workspace [--root DIR] [--json]   # lint the whole workspace
//! beas-lint [--json] FILE...                    # lint specific files
//! beas-lint --list-rules                        # print the rule catalog
//! ```
//!
//! Exit code 0 when clean, 1 when any finding survives suppressions, 2 on
//! usage or I/O errors.  CI runs `cargo run --release -p beas-lint --
//! --workspace` as a required gate.

use beas_lint::{findings_to_json, lint_file, lint_workspace, Finding, RULES};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--list-rules" => {
                for (id, summary) in RULES {
                    println!("{id}  {summary}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = PathBuf::from(dir),
                    None => return usage("--root needs a directory"),
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: beas-lint --workspace [--root DIR] [--json]\n\
                     \x20      beas-lint [--json] FILE...\n\
                     \x20      beas-lint --list-rules"
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                return usage(&format!("unknown flag {flag}"));
            }
            p => paths.push(p.to_string()),
        }
        i += 1;
    }

    let findings: Result<Vec<Finding>, String> = if workspace {
        if !paths.is_empty() {
            return usage("--workspace takes no file arguments");
        }
        lint_workspace(&root)
    } else if paths.is_empty() {
        return usage("nothing to lint: pass --workspace or file paths");
    } else {
        let mut all = Vec::new();
        for p in &paths {
            match lint_file(Path::new(p), p) {
                Ok(f) => all.extend(f),
                Err(e) => return usage(&e),
            }
        }
        Ok(all)
    };

    let findings = match findings {
        Ok(f) => f,
        Err(e) => return usage(&e),
    };

    if json {
        println!("{}", findings_to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
        if findings.is_empty() {
            println!("beas-lint: clean");
        } else {
            println!("beas-lint: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("beas-lint: {msg}");
    eprintln!("usage: beas-lint --workspace [--root DIR] [--json] | beas-lint FILE...");
    ExitCode::from(2)
}
