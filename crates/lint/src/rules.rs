//! The BEAS rule catalog: project invariants enforced over token streams.
//!
//! Each rule guards an invariant that was once a shipped bug class (see
//! `crates/lint/README.md` for the full catalog and the history behind each
//! rule).  Rules are heuristic by design — they match token patterns, not
//! types — so every rule supports an explicit, *justified* suppression:
//!
//! ```text
//! // beas-lint: allow(L004) -- building the reduced database is the point
//! ```
//!
//! A suppression comment applies to findings on its own line and on the
//! next *code* line below it — intervening comment lines are skipped, so a
//! justification may continue over several comment lines before the code it
//! excuses.  A malformed suppression (bad rule id, missing `-- reason`) is
//! itself a finding (`L000`), so suppressions cannot rot silently.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

/// Evaluation entry points whose `Result` must propagate (rule L001).
const EVAL_FNS: &[&str] = &["evaluate", "evaluate_predicate"];

/// Combinators that silently swallow an `Err` (rule L001).
const SWALLOWERS: &[&str] = &["unwrap_or", "unwrap_or_else", "unwrap_or_default", "ok"];

/// Hash/tree containers whose key type rule L002 inspects.
const KEYED_CONTAINERS: &[&str] = &["HashMap", "HashSet", "BTreeMap", "BTreeSet"];

/// The canonicalization entry points of `beas_common::key` (rule L002).
const KEY_FNS: &[&str] = &[
    "index_key",
    "join_key",
    "canonical_key_value",
    "is_canonical_key_value",
];

/// Blocking-operator files rule L003 applies to.
const BLOCKING_FILES: &[&str] = &["src/executor.rs", "src/approx.rs"];

/// Tokens that prove a blocking loop cooperates with the session quota
/// (rule L003): a direct checkpoint, or delegation to one of the
/// checkpointing drains.
const QUOTA_TOKENS: &[&str] = &[
    "checkpoint",
    "charge_tuples",
    "check_rows",
    "drain_checked",
    "aggregate_with_quota",
    "aggregate_partial_with_quota",
];

/// Storage mutators that must stay behind the maintenance facade (L004).
const MUTATORS: &[&str] = &[
    "table_mut",
    "create_table",
    "drop_table",
    "delete_where",
    "add_row",
    "remove_row",
    "remove_rows",
    "insert_row",
];

/// Files allowed to call [`MUTATORS`] directly: the storage crate itself
/// (prefix match) plus the maintenance facade and index-maintenance
/// modules.
const MUTATION_FACADES: &[&str] = &[
    "crates/storage/",
    "crates/core/src/system.rs",
    "crates/access/src/maintenance.rs",
    "crates/access/src/indexes.rs",
];

/// Files holding code that runs concurrently (rule L005): shared-state
/// primitives there must come from the approved set (`Arc`, `Mutex`,
/// `RwLock`, atomics, `Condvar`, scoped threads).
const CONCURRENT_FILES: &[&str] = &[
    "crates/service/src/",
    "crates/common/src/quota.rs",
    "crates/common/src/morsel.rs",
    "crates/engine/src/executor.rs",
];

/// Single-threaded interior-mutability / escape-hatch primitives banned in
/// [`CONCURRENT_FILES`] (rule L005).  `static mut` is banned everywhere.
const NON_APPROVED_SYNC: &[&str] = &["RefCell", "UnsafeCell", "transmute", "thread_local"];

/// Columnar-kernel files rule L008 applies to (suffix match): the modules
/// holding the vectorized filter / projection / hash kernels.
const KERNEL_FILES: &[&str] = &["src/vectorized.rs", "src/columnar.rs"];

/// The batched canonical-hash entry points of `beas_common::key` (rule
/// L008), accepted alongside [`KEY_FNS`].
const CANONICAL_HASH_FNS: &[&str] = &["canonical_hash", "canonical_key_hash"];

/// Tokens that prove a kernel file computes hashes or keys containers
/// (rule L008): a hand-rolled hasher, or a keyed container.
const HASHING_TOKENS: &[&str] = &["Hasher", "DefaultHasher", "Hash"];

/// Clock types whose raw `::now()` is banned outside the sanctioned clock
/// module (rule L009): all timing must route through `beas_obs::clock` so
/// the trace layer owns every timestamp source.
const RAW_CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];

/// Files allowed to read the raw clock (prefix match, rule L009): the
/// observability crate itself (it *is* the sanctioned clock) and the bench
/// harness (criterion-style timing loops are measurement, not product
/// timing).  Tests/benches/examples are already exempt via test-code
/// scoping.
const RAW_CLOCK_FILES: &[&str] = &["crates/obs/", "crates/bench/"];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`L001` .. `L009`, or `L000` for a malformed suppression).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Per-file facts the path alone determines.
#[derive(Debug, Clone, Default)]
pub struct FileContext {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Whole file is test/bench/example code (path-based).
    pub is_test_code: bool,
    /// The file is a crate root (`src/lib.rs`, `src/main.rs`,
    /// `src/bin/*.rs`) of a non-shim crate.
    pub is_crate_root: bool,
}

impl FileContext {
    /// Derive the context from a workspace-relative path.
    pub fn from_path(path: &str) -> FileContext {
        let norm = path.replace('\\', "/");
        let components: Vec<&str> = norm.split('/').collect();
        let is_test_code = components
            .iter()
            .any(|c| matches!(*c, "tests" | "benches" | "examples"));
        let is_shim = components.contains(&"shims");
        let is_crate_root = !is_shim
            && (norm.ends_with("src/lib.rs")
                || norm.ends_with("src/main.rs")
                || (norm.contains("/src/bin/") && norm.ends_with(".rs")));
        FileContext {
            path: norm,
            is_test_code,
            is_crate_root,
        }
    }
}

/// Lint one file's source text.  Returned findings are already filtered
/// through suppressions and test-code scoping, sorted by line.
pub fn lint_source(src: &str, ctx: &FileContext) -> Vec<Finding> {
    let all = lex(src);
    let sig: Vec<&Token> = all
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let test_spans = test_line_spans(&sig);
    let in_test =
        |line: u32| ctx.is_test_code || test_spans.iter().any(|r| r.contains(&(line as usize)));

    let (suppressions, mut findings) = parse_suppressions(&all, ctx);

    check_l001(&sig, ctx, &mut findings);
    check_l002(&sig, ctx, &in_test, &mut findings);
    check_l003(&sig, ctx, &mut findings);
    check_l004(&sig, ctx, &mut findings);
    check_l005(&sig, ctx, &mut findings);
    check_l006(&all, ctx, &mut findings);
    check_l007(&sig, &all, ctx, &mut findings);
    check_l008(&sig, &all, ctx, &mut findings);
    check_l009(&sig, ctx, &mut findings);

    findings.retain(|f| {
        // L006/L007 apply everywhere; the structural rules skip test code
        let scoped_out = !matches!(f.rule, "L000" | "L006" | "L007") && in_test(f.line);
        let suppressed = suppressions
            .get(f.rule)
            .map(|lines| lines.contains(&f.line))
            .unwrap_or(false);
        !scoped_out && !suppressed
    });
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Line ranges covered by `#[cfg(test)] mod ... { ... }` items.
fn test_line_spans(sig: &[&Token]) -> Vec<Range<usize>> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 6 < sig.len() {
        let is_cfg_test = sig[i].is_punct('#')
            && sig[i + 1].is_punct('[')
            && sig[i + 2].is_ident("cfg")
            && sig[i + 3].is_punct('(')
            && sig[i + 4].is_ident("test")
            && sig[i + 5].is_punct(')')
            && sig[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // find the `mod name {` that follows (possibly after more attrs)
        let mut j = i + 7;
        while j < sig.len() && !sig[j].is_ident("mod") {
            // another item kind under cfg(test) (fn, use) — span just it?
            // keep it simple: only mod blocks are recognized
            if sig[j].is_punct('{') || sig[j].is_punct(';') {
                break;
            }
            j += 1;
        }
        if j < sig.len() && sig[j].is_ident("mod") {
            if let Some(open) = (j..sig.len()).find(|&k| sig[k].is_punct('{')) {
                if let Some(close) = matching_brace(sig, open) {
                    spans.push(sig[open].line as usize..sig[close].line as usize + 1);
                    i = close;
                    continue;
                }
            }
        }
        i += 1;
    }
    spans
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(sig: &[&Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in sig.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(sig: &[&Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in sig.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Parse `beas-lint: allow(Lnnn) -- reason` suppressions out of comments.
/// Returns rule → suppressed lines, plus `L000` findings for malformed
/// suppressions.
fn parse_suppressions(
    all: &[Token],
    ctx: &FileContext,
) -> (HashMap<String, Vec<u32>>, Vec<Finding>) {
    let mut map: HashMap<String, Vec<u32>> = HashMap::new();
    let mut findings = Vec::new();
    for (i, t) in all.iter().enumerate() {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        // doc comments (`///`, `//!`, `/**`, `/*!`) describe the syntax;
        // only plain comments can *be* suppressions
        if t.text.starts_with("///")
            || t.text.starts_with("//!")
            || t.text.starts_with("/**")
            || t.text.starts_with("/*!")
        {
            continue;
        }
        let Some(pos) = t.text.find("beas-lint:") else {
            continue;
        };
        let rest = t.text[pos + "beas-lint:".len()..].trim();
        match parse_allow(rest) {
            Some((rules, _reason)) => {
                // cover the marker's own line plus the next code line below
                // it; the justification may continue over further comment
                // lines in between
                let next_code_line = all[i + 1..]
                    .iter()
                    .find(|n| !matches!(n.kind, TokenKind::LineComment | TokenKind::BlockComment))
                    .map(|n| n.line);
                for r in rules {
                    let lines = map.entry(r).or_default();
                    lines.push(t.line);
                    lines.push(t.line + 1);
                    if let Some(l) = next_code_line {
                        lines.push(l);
                    }
                }
            }
            None => findings.push(Finding {
                rule: "L000",
                file: ctx.path.clone(),
                line: t.line,
                message: "malformed suppression: expected \
                    `beas-lint: allow(Lnnn) -- reason`"
                    .to_string(),
            }),
        }
    }
    (map, findings)
}

/// Parse `allow(L004)` or `allow(L002, L004) -- reason`, requiring a
/// non-empty reason after `--`.
fn parse_allow(rest: &str) -> Option<(Vec<String>, String)> {
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .collect();
    if rules.is_empty()
        || !rules.iter().all(|r| {
            r.len() == 4 && r.starts_with('L') && r[1..].chars().all(|c| c.is_ascii_digit())
        })
    {
        return None;
    }
    let tail = rest[close + 1..].trim_start();
    let reason = tail.strip_prefix("--")?.trim();
    if reason.is_empty() {
        return None;
    }
    Some((rules, reason.to_string()))
}

/// L001 — a `Result` from the shared expression evaluator must propagate:
/// `evaluate(..)`/`evaluate_predicate(..)` chained into
/// `unwrap_or`/`unwrap_or_else`/`unwrap_or_default`/`ok` silently converts
/// a type error into a wrong answer (the PR 2 baseline/bounded divergence
/// bug class).
fn check_l001(sig: &[&Token], ctx: &FileContext, findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i < sig.len() {
        if sig[i].kind == TokenKind::Ident
            && EVAL_FNS.contains(&sig[i].text.as_str())
            && sig.get(i + 1).map(|t| t.is_punct('(')).unwrap_or(false)
        {
            if let Some(close) = matching_paren(sig, i + 1) {
                // follow the method chain off the call
                let mut k = close + 1;
                while k + 1 < sig.len() && sig[k].is_punct('.') {
                    let m = sig[k + 1];
                    let called = sig.get(k + 2).map(|t| t.is_punct('(')).unwrap_or(false);
                    if m.kind == TokenKind::Ident && SWALLOWERS.contains(&m.text.as_str()) && called
                    {
                        findings.push(Finding {
                            rule: "L001",
                            file: ctx.path.clone(),
                            line: m.line,
                            message: format!(
                                "`{}(..).{}(..)` swallows an evaluation error; \
                                 propagate the Result instead (`?`)",
                                sig[i].text, m.text
                            ),
                        });
                        break;
                    }
                    if !called {
                        break;
                    }
                    match matching_paren(sig, k + 2) {
                        Some(c) => k = c + 1,
                        None => break,
                    }
                }
                i = close;
            }
        }
        i += 1;
    }
}

/// L002 — a hash/tree container keyed by raw `Value`s (or `Vec<Value>` /
/// `Row`) in a file that never canonicalizes through `beas_common::key`
/// means join/index keys can disagree on `-0.0`, integral floats and
/// date-typed strings.  One finding per file, at the first such container.
fn check_l002<F: Fn(u32) -> bool>(
    sig: &[&Token],
    ctx: &FileContext,
    in_test: &F,
    findings: &mut Vec<Finding>,
) {
    if ctx.path.ends_with("crates/common/src/key.rs") {
        return;
    }
    let canonicalizes = sig.iter().any(|t| {
        t.kind == TokenKind::Ident && KEY_FNS.contains(&t.text.as_str()) && !in_test(t.line)
    });
    if canonicalizes {
        return;
    }
    for (i, t) in sig.iter().enumerate() {
        if t.kind != TokenKind::Ident
            || !KEYED_CONTAINERS.contains(&t.text.as_str())
            || in_test(t.line)
        {
            continue;
        }
        if !sig.get(i + 1).map(|t| t.is_punct('<')).unwrap_or(false) {
            continue;
        }
        let key_is_value = match sig.get(i + 2) {
            Some(t2) if t2.is_ident("Value") || t2.is_ident("Row") => true,
            Some(t2) if t2.is_ident("Vec") => {
                sig.get(i + 3).map(|t| t.is_punct('<')).unwrap_or(false)
                    && sig.get(i + 4).map(|t| t.is_ident("Value")).unwrap_or(false)
            }
            _ => false,
        };
        if key_is_value {
            findings.push(Finding {
                rule: "L002",
                file: ctx.path.clone(),
                line: t.line,
                message: format!(
                    "`{}` keyed by raw values in a file that never calls \
                     `beas_common::key` canonicalization ({}); \
                     route keys through `index_key`/`join_key`",
                    t.text,
                    KEY_FNS.join("/")
                ),
            });
            return;
        }
    }
}

/// L003 — blocking operators (sort/aggregate/drain functions in executor
/// code) buffer their whole input between quota charge points; each one
/// must checkpoint the session quota inside its loop (the PR 6 retrofit).
fn check_l003(sig: &[&Token], ctx: &FileContext, findings: &mut Vec<Finding>) {
    if !BLOCKING_FILES.iter().any(|f| ctx.path.ends_with(f)) {
        return;
    }
    for (name, name_line, body) in fn_items(sig) {
        let lname = name.to_ascii_lowercase();
        let blocking = ["sort", "aggregate", "drain"]
            .iter()
            .any(|k| lname.contains(k))
            && !lname.contains("cmp");
        if !blocking {
            continue;
        }
        let toks = &sig[body];
        let has_loop = toks
            .iter()
            .any(|t| t.is_ident("for") || t.is_ident("while") || t.is_ident("loop"));
        let checkpoints = toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && QUOTA_TOKENS.contains(&t.text.as_str()));
        if has_loop && !checkpoints {
            findings.push(Finding {
                rule: "L003",
                file: ctx.path.clone(),
                line: name_line,
                message: format!(
                    "blocking fn `{name}` loops without a quota checkpoint; \
                     call `QuotaTracker::checkpoint`/`check_rows` (or drain \
                     through `drain_checked`) every BLOCKING_CHECK_ROWS rows"
                ),
            });
        }
    }
}

/// L004 — direct storage mutation (`table_mut`, `create_table`,
/// `delete_where`, index `add_row`/`remove_rows`, ...) outside the storage
/// crate and the maintenance facade bypasses generation bumps and index
/// repair — snapshots and the plan cache silently go stale.
fn check_l004(sig: &[&Token], ctx: &FileContext, findings: &mut Vec<Finding>) {
    if MUTATION_FACADES
        .iter()
        .any(|f| ctx.path.starts_with(f) || ctx.path.ends_with(f))
    {
        return;
    }
    for i in 1..sig.len() {
        let t = sig[i];
        if t.kind == TokenKind::Ident
            && MUTATORS.contains(&t.text.as_str())
            && sig[i - 1].is_punct('.')
            && sig.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
        {
            findings.push(Finding {
                rule: "L004",
                file: ctx.path.clone(),
                line: t.line,
                message: format!(
                    "direct storage mutation `.{}(..)` outside the storage \
                     crate / maintenance facade; go through \
                     `BeasSystem::{{insert_rows,delete_rows,database_mut}}` \
                     or `Maintainer`",
                    t.text
                ),
            });
        }
    }
}

/// L005 — concurrency-sensitive code must stick to the approved sync
/// primitives.  `static mut` is flagged everywhere; single-threaded
/// interior mutability (`RefCell`, `UnsafeCell`, `transmute`,
/// `thread_local`) is flagged in the concurrent crates.
fn check_l005(sig: &[&Token], ctx: &FileContext, findings: &mut Vec<Finding>) {
    for i in 0..sig.len() {
        if sig[i].is_ident("static") && sig.get(i + 1).map(|t| t.is_ident("mut")).unwrap_or(false) {
            findings.push(Finding {
                rule: "L005",
                file: ctx.path.clone(),
                line: sig[i].line,
                message: "`static mut` is never acceptable; use an atomic, \
                    a lock, or `OnceLock`"
                    .to_string(),
            });
        }
    }
    let concurrent = CONCURRENT_FILES
        .iter()
        .any(|f| ctx.path.starts_with(f) || ctx.path.ends_with(f));
    if !concurrent {
        return;
    }
    for t in sig {
        if t.kind == TokenKind::Ident && NON_APPROVED_SYNC.contains(&t.text.as_str()) {
            findings.push(Finding {
                rule: "L005",
                file: ctx.path.clone(),
                line: t.line,
                message: format!(
                    "`{}` in concurrency-sensitive code; approved primitives \
                     are Arc/Mutex/RwLock/atomics/Condvar/scoped threads",
                    t.text
                ),
            });
        }
    }
}

/// L006 — every `#[allow(..)]` / `#![allow(..)]` must carry a
/// justification comment on the same line or the line directly above.
fn check_l006(all: &[Token], ctx: &FileContext, findings: &mut Vec<Finding>) {
    let comment_lines: Vec<u32> = all
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|t| t.line)
        .collect();
    let sig: Vec<&Token> = all
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let mut i = 0;
    while i < sig.len() {
        let hash = sig[i].is_punct('#');
        let open = if hash && sig.get(i + 1).map(|t| t.is_punct('[')).unwrap_or(false) {
            Some(i + 1)
        } else if hash
            && sig.get(i + 1).map(|t| t.is_punct('!')).unwrap_or(false)
            && sig.get(i + 2).map(|t| t.is_punct('[')).unwrap_or(false)
        {
            Some(i + 2)
        } else {
            None
        };
        if let Some(open) = open {
            if sig
                .get(open + 1)
                .map(|t| t.is_ident("allow"))
                .unwrap_or(false)
            {
                let line = sig[i].line;
                let justified = comment_lines.iter().any(|&cl| cl == line || cl + 1 == line);
                if !justified {
                    findings.push(Finding {
                        rule: "L006",
                        file: ctx.path.clone(),
                        line,
                        message: "`#[allow(..)]` without a justification \
                            comment on the same or preceding line"
                            .to_string(),
                    });
                }
            }
        }
        i += 1;
    }
}

/// L007 — every non-shim crate root must carry `#![forbid(unsafe_code)]`
/// (or `#![deny(unsafe_code)]` with a justification comment).
fn check_l007(sig: &[&Token], all: &[Token], ctx: &FileContext, findings: &mut Vec<Finding>) {
    if !ctx.is_crate_root {
        return;
    }
    let mut i = 0;
    while i + 5 < sig.len() {
        if sig[i].is_punct('#')
            && sig[i + 1].is_punct('!')
            && sig[i + 2].is_punct('[')
            && (sig[i + 3].is_ident("forbid") || sig[i + 3].is_ident("deny"))
            && sig[i + 4].is_punct('(')
            && sig[i + 5].is_ident("unsafe_code")
        {
            if sig[i + 3].is_ident("deny") {
                // deny is escapable; demand the documented exception
                let line = sig[i].line;
                let justified = all.iter().any(|t| {
                    matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
                        && (t.line == line || t.line + 1 == line)
                });
                if !justified {
                    findings.push(Finding {
                        rule: "L007",
                        file: ctx.path.clone(),
                        line,
                        message: "`#![deny(unsafe_code)]` needs a comment \
                            documenting why `forbid` is not possible"
                            .to_string(),
                    });
                }
            }
            return;
        }
        i += 1;
    }
    findings.push(Finding {
        rule: "L007",
        file: ctx.path.clone(),
        line: 1,
        message: "crate root missing `#![forbid(unsafe_code)]`".to_string(),
    });
}

/// L008 — columnar-kernel files ([`KERNEL_FILES`]) must (a) route every
/// key-hashing path through `beas_common::key` — a file that hashes values
/// or keys a container without referencing a canonical key/hash entry point
/// has forked the definition of key equality — and (b) carry a paired
/// `vectorized == row` differential test reference
/// (`tests/vectorized_semantics.rs`), so a kernel can never exist without
/// the harness that pins it bit-exact to the row engine.
fn check_l008(sig: &[&Token], all: &[Token], ctx: &FileContext, findings: &mut Vec<Finding>) {
    if !KERNEL_FILES.iter().any(|f| ctx.path.ends_with(f)) {
        return;
    }
    let canonicalizes = sig.iter().any(|t| {
        t.kind == TokenKind::Ident
            && (KEY_FNS.contains(&t.text.as_str()) || CANONICAL_HASH_FNS.contains(&t.text.as_str()))
    });
    if !canonicalizes {
        let hashing = sig.iter().find(|t| {
            t.kind == TokenKind::Ident
                && (HASHING_TOKENS.contains(&t.text.as_str())
                    || KEYED_CONTAINERS.contains(&t.text.as_str()))
        });
        if let Some(t) = hashing {
            findings.push(Finding {
                rule: "L008",
                file: ctx.path.clone(),
                line: t.line,
                message: format!(
                    "kernel file hashes via `{}` without routing keys through \
                     `beas_common::key` ({}); use \
                     `canonical_hash`/`canonical_key_hash` so vectorized key \
                     equality cannot drift from the row engine's",
                    t.text,
                    CANONICAL_HASH_FNS.join("/")
                ),
            });
        }
    }
    let referenced = all.iter().any(|t| t.text.contains("vectorized_semantics"));
    if !referenced {
        findings.push(Finding {
            rule: "L008",
            file: ctx.path.clone(),
            line: 1,
            message: "kernel file missing its paired vectorized-equals-row \
                differential test reference (tests/vectorized_semantics.rs)"
                .to_string(),
        });
    }
}

/// L009 — no raw `Instant::now()` / `SystemTime::now()` outside the
/// sanctioned clock ([`RAW_CLOCK_FILES`]).  Every product timestamp must
/// come from `beas_obs::clock::now()`: that is what lets the trace layer
/// keep all timing behind one `TraceLevel` knob, and what keeps the
/// trace-neutrality guarantee auditable — a stray clock read is a timing
/// side channel the observability layer cannot see or switch off.
fn check_l009(sig: &[&Token], ctx: &FileContext, findings: &mut Vec<Finding>) {
    if RAW_CLOCK_FILES.iter().any(|f| ctx.path.starts_with(f)) {
        return;
    }
    let mut i = 0;
    while i + 4 < sig.len() {
        if sig[i].kind == TokenKind::Ident
            && RAW_CLOCK_TYPES.contains(&sig[i].text.as_str())
            && sig[i + 1].is_punct(':')
            && sig[i + 2].is_punct(':')
            && sig[i + 3].is_ident("now")
            && sig[i + 4].is_punct('(')
        {
            findings.push(Finding {
                rule: "L009",
                file: ctx.path.clone(),
                line: sig[i].line,
                message: format!(
                    "raw `{}::now()` outside `beas_obs`; route timing through \
                     `beas_obs::clock::now()` so the trace layer owns every \
                     timestamp source",
                    sig[i].text
                ),
            });
        }
        i += 1;
    }
}

/// Iterate `fn` items: `(name, line of the name, body token range)`.
/// Trait-method declarations (no body) are skipped.
fn fn_items(sig: &[&Token]) -> Vec<(String, u32, Range<usize>)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < sig.len() {
        if sig[i].is_ident("fn") && sig[i + 1].kind == TokenKind::Ident {
            let name = sig[i + 1].text.clone();
            let line = sig[i + 1].line;
            // body = first `{` before any `;` at signature level
            let mut j = i + 2;
            let mut body = None;
            while j < sig.len() {
                if sig[j].is_punct(';') {
                    break;
                }
                if sig[j].is_punct('{') {
                    body = matching_brace(sig, j).map(|close| j..close + 1);
                    break;
                }
                j += 1;
            }
            if let Some(range) = body {
                let end = range.end;
                out.push((name, line, range));
                // nested fns are rare; recursing over the same span would
                // double-report, so skip past the body
                i = end;
                continue;
            }
        }
        i += 1;
    }
    out
}
