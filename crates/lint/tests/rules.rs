//! Fixture-driven rule tests: every rule must fire on its broken snippet
//! and stay silent on the matching clean snippet.
//!
//! The fixtures live under `tests/fixtures/` — a directory the workspace
//! walker deliberately skips (the snippets are *supposed* to be broken) —
//! and are linted here through [`beas_lint::lint_source`] under a simulated
//! workspace path, since several rules scope by file location.

use beas_lint::{lint_source, FileContext, Finding};
use std::path::Path;

/// Lint a fixture as if it lived at `simulated_path` in the workspace.
fn lint_fixture(name: &str, simulated_path: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    lint_source(&src, &FileContext::from_path(simulated_path))
}

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn l001_fires_on_swallowed_evaluation_results() {
    let findings = lint_fixture("l001_fire.rs", "crates/engine/src/filter.rs");
    assert_eq!(rules_of(&findings), vec!["L001", "L001"], "{findings:?}");
    assert!(findings[0].message.contains("unwrap_or"));
    assert!(findings[1].message.contains("ok"));
}

#[test]
fn l001_clean_on_propagated_results() {
    let findings = lint_fixture("l001_clean.rs", "crates/engine/src/filter.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l002_fires_on_raw_value_keys_without_canonicalization() {
    let findings = lint_fixture("l002_fire.rs", "crates/engine/src/group.rs");
    assert_eq!(rules_of(&findings), vec!["L002"], "{findings:?}");
    assert!(findings[0].message.contains("HashMap"));
}

#[test]
fn l002_clean_when_the_file_canonicalizes() {
    let findings = lint_fixture("l002_clean.rs", "crates/engine/src/group.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l002_skips_the_key_module_itself() {
    let findings = lint_fixture("l002_fire.rs", "crates/common/src/key.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l003_fires_on_blocking_loops_without_checkpoints() {
    let findings = lint_fixture("l003_fire.rs", "crates/engine/src/executor.rs");
    assert_eq!(rules_of(&findings), vec!["L003"], "{findings:?}");
    assert!(findings[0].message.contains("aggregate_groups"));
}

#[test]
fn l003_clean_when_loops_checkpoint_and_only_in_blocking_files() {
    let findings = lint_fixture("l003_clean.rs", "crates/engine/src/executor.rs");
    assert!(findings.is_empty(), "{findings:?}");
    // the same broken source outside executor/approx files is out of scope
    let elsewhere = lint_fixture("l003_fire.rs", "crates/engine/src/plan.rs");
    assert!(elsewhere.is_empty(), "{elsewhere:?}");
}

#[test]
fn l004_fires_on_direct_storage_mutation() {
    let findings = lint_fixture("l004_fire.rs", "crates/engine/src/load.rs");
    assert_eq!(rules_of(&findings), vec!["L004", "L004"], "{findings:?}");
    assert!(findings[0].message.contains("table_mut"));
    assert!(findings[1].message.contains("delete_where"));
}

#[test]
fn l004_clean_through_the_facade_and_inside_it() {
    let findings = lint_fixture("l004_clean.rs", "crates/engine/src/load.rs");
    assert!(findings.is_empty(), "{findings:?}");
    // the storage crate and the facade modules may mutate directly
    for facade in [
        "crates/storage/src/table.rs",
        "crates/core/src/system.rs",
        "crates/access/src/maintenance.rs",
    ] {
        let inside = lint_fixture("l004_fire.rs", facade);
        assert!(inside.is_empty(), "{facade}: {inside:?}");
    }
}

#[test]
fn l005_fires_on_static_mut_and_refcell_in_concurrent_code() {
    let findings = lint_fixture("l005_fire.rs", "crates/service/src/session.rs");
    assert_eq!(rules_of(&findings), vec!["L005", "L005"], "{findings:?}");
    assert!(findings[0].message.contains("static mut"));
    assert!(findings[1].message.contains("RefCell"));
}

#[test]
fn l005_static_mut_fires_everywhere_refcell_only_in_concurrent_files() {
    let findings = lint_fixture("l005_fire.rs", "crates/sql/src/parser.rs");
    assert_eq!(rules_of(&findings), vec!["L005"], "{findings:?}");
    assert!(findings[0].message.contains("static mut"));
    let clean = lint_fixture("l005_clean.rs", "crates/service/src/session.rs");
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn l006_fires_on_unjustified_allow() {
    let findings = lint_fixture("l006_fire.rs", "crates/sql/src/binder.rs");
    assert_eq!(rules_of(&findings), vec!["L006"], "{findings:?}");
}

#[test]
fn l006_clean_with_same_line_or_preceding_comment() {
    let findings = lint_fixture("l006_clean.rs", "crates/sql/src/binder.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l007_fires_on_crate_roots_missing_the_forbid() {
    let findings = lint_fixture("l007_fire.rs", "crates/foo/src/lib.rs");
    assert_eq!(rules_of(&findings), vec!["L007"], "{findings:?}");
    // the same file is fine when it is not a crate root, or lives in a shim
    assert!(lint_fixture("l007_fire.rs", "crates/foo/src/util.rs").is_empty());
    assert!(lint_fixture("l007_fire.rs", "crates/shims/rand/src/lib.rs").is_empty());
}

#[test]
fn l007_clean_with_the_forbid() {
    let findings = lint_fixture("l007_clean.rs", "crates/foo/src/lib.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l008_fires_on_kernel_files_with_hand_rolled_hashing() {
    let findings = lint_fixture("l008_fire.rs", "crates/engine/src/vectorized.rs");
    assert_eq!(rules_of(&findings), vec!["L008", "L008"], "{findings:?}");
    // line 1: missing differential-test reference; then the hashing token
    assert!(findings[0].message.contains("vectorized_semantics"));
    assert!(findings[1].message.contains("canonical_key_hash"));
    // the same source outside a kernel file is out of scope
    assert!(lint_fixture("l008_fire.rs", "crates/engine/src/executor_helpers.rs").is_empty());
}

#[test]
fn l008_clean_when_hashing_is_canonical_and_harness_referenced() {
    for path in [
        "crates/engine/src/vectorized.rs",
        "crates/sql/src/columnar.rs",
    ] {
        let findings = lint_fixture("l008_clean.rs", path);
        assert!(findings.is_empty(), "{path}: {findings:?}");
    }
}

#[test]
fn l009_fires_on_raw_clock_reads() {
    let findings = lint_fixture("l009_fire.rs", "crates/engine/src/executor.rs");
    assert_eq!(rules_of(&findings), vec!["L009", "L009"], "{findings:?}");
    assert!(findings[0].message.contains("Instant::now()"));
    assert!(findings[1].message.contains("SystemTime::now()"));
    assert!(findings[0].message.contains("beas_obs::clock::now()"));
}

#[test]
fn l009_exempts_the_clock_module_and_the_bench_harness() {
    for path in [
        "crates/obs/src/clock.rs",
        "crates/bench/src/harness.rs",
        // test code is scoped out like every structural rule
        "crates/engine/tests/timing.rs",
    ] {
        let findings = lint_fixture("l009_fire.rs", path);
        assert!(findings.is_empty(), "{path}: {findings:?}");
    }
}

#[test]
fn l009_clean_when_timing_routes_through_the_sanctioned_clock() {
    let findings = lint_fixture("l009_clean.rs", "crates/engine/src/executor.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn justified_suppressions_silence_findings() {
    // l004_fire.rs shows the violations fire; suppressed.rs is the same
    // shape with above-line, multi-comment-line and same-line suppressions
    let findings = lint_fixture("suppressed.rs", "crates/engine/src/load.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn suppressions_do_not_leak_across_rules_or_lines() {
    // an L002 suppression must not excuse an L004 finding
    let src = "// beas-lint: allow(L002) -- wrong rule\n\
               fn f(db: &mut Database) { db.drop_table(\"t\").unwrap(); }\n";
    let findings = lint_source(src, &FileContext::from_path("crates/engine/src/x.rs"));
    assert_eq!(rules_of(&findings), vec!["L004"], "{findings:?}");
    // and a suppression two code lines up is out of range
    let src = "// beas-lint: allow(L004) -- too far away\n\
               fn f(db: &mut Database) {\n\
               \x20   let keep = 1;\n\
               \x20   db.drop_table(\"t\").unwrap();\n\
               }\n";
    let findings = lint_source(src, &FileContext::from_path("crates/engine/src/x.rs"));
    assert_eq!(rules_of(&findings), vec!["L004"], "{findings:?}");
}

#[test]
fn malformed_suppressions_are_l000_findings() {
    let findings = lint_fixture("malformed.rs", "crates/engine/src/x.rs");
    assert_eq!(
        rules_of(&findings),
        vec!["L000", "L000", "L000"],
        "{findings:?}"
    );
}

#[test]
fn structural_rules_skip_test_code_but_l006_applies_there_too() {
    let src = "#[cfg(test)]\n\
               mod tests {\n\
               \x20   #[allow(dead_code)]\n\
               \x20   fn helper(db: &mut Database) { db.drop_table(\"t\").unwrap(); }\n\
               }\n";
    let findings = lint_source(src, &FileContext::from_path("crates/engine/src/x.rs"));
    // the L004 inside #[cfg(test)] is scoped out; the bare allow is not
    assert_eq!(rules_of(&findings), vec!["L006"], "{findings:?}");
}
