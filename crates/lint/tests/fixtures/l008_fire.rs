// L008 fixture (fire): a kernel file that hand-rolls its key hashing —
// bypassing `beas_common::key` — and never references the differential
// harness that would catch the resulting drift.
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

fn build_table(rows: &[RowRef<'_>], keys: &[usize]) -> HashMap<u64, Vec<usize>> {
    let mut table: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, row) in rows.iter().enumerate() {
        let mut h = DefaultHasher::new();
        for &k in keys {
            row.value_at(k).hash(&mut h);
        }
        table.entry(h.finish()).or_default().push(i);
    }
    table
}
