// Fixture: raw clock reads outside the sanctioned beas_obs::clock module.
use std::time::{Instant, SystemTime};

fn measure_badly() -> u64 {
    let start = Instant::now();
    expensive();
    start.elapsed().as_nanos() as u64
}

fn stamp_badly() -> SystemTime {
    SystemTime::now()
}

fn expensive() {}
