// L002 clean fixture: the same container, but keys flow through
// beas_common::key canonicalization.
use beas_common::index_key;
use std::collections::HashMap;

fn group(rows: &[Row], key_cols: &[usize]) -> HashMap<Vec<Value>, Vec<Row>> {
    let mut groups: HashMap<Vec<Value>, Vec<Row>> = HashMap::new();
    for r in rows {
        let key = index_key(key_cols.iter().map(|&i| &r[i]));
        groups.entry(key).or_default().push(r.clone());
    }
    groups
}

// containers keyed by something other than values never fire
fn by_name(names: &[String]) -> HashMap<String, usize> {
    names.iter().cloned().zip(0..).collect()
}
