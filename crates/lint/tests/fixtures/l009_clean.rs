// Fixture: timing routed through the sanctioned clock; mentioning the
// Instant *type* (e.g. storing a start token) is fine — only a raw
// `::now()` read is a finding.
use beas_obs::clock;
use std::time::Instant;

fn measure_properly() -> u64 {
    let start: Instant = clock::now();
    expensive();
    start.elapsed().as_nanos() as u64
}

fn expensive() {}
