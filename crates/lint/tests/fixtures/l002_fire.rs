// L002 fixture: a raw Value-keyed map in a file that never canonicalizes.
use std::collections::HashMap;

fn group(rows: &[Row]) -> HashMap<Vec<Value>, Vec<Row>> {
    let mut groups: HashMap<Vec<Value>, Vec<Row>> = HashMap::new();
    for r in rows {
        groups.entry(r.clone()).or_default().push(r.clone());
    }
    groups
}
