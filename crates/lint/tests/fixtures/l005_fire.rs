// L005 fixture (linted as a service file): static mut plus single-threaded
// interior mutability in concurrency-sensitive code.
static mut COUNTER: u64 = 0;

fn session_state() -> std::cell::RefCell<u64> {
    Default::default()
}
