// Malformed-suppression fixture: each marker below is broken in a
// different way and must surface as an L000 finding.
fn noop() {}

// beas-lint: allow(L004)
fn missing_reason() {}

// beas-lint: allow(L04) -- rule id too short
fn bad_rule_id() {}

// beas-lint: allow(Lnnn) -- placeholder digits
fn placeholder_digits() {}
