// Suppression fixture (linted as an engine file): the same L004 violations
// as l004_fire.rs, each excused by a justified suppression — including one
// whose justification continues over extra comment lines.
fn load(db: &mut Database) -> Result<()> {
    // beas-lint: allow(L004) -- fixture exercising the suppression syntax
    let table = db.table_mut("call")?;
    // beas-lint: allow(L004) -- a justification that needs more room
    // continues over several comment lines before the code it excuses,
    // and the suppression still covers the next code line
    table.delete_where(|r| r.is_empty());
    db.drop_table("scratch")?; // beas-lint: allow(L004) -- same-line form
    Ok(())
}
