#![forbid(unsafe_code)]
//! A crate root (linted as src/lib.rs) with the required forbid.

pub fn answer() -> u32 {
    42
}
