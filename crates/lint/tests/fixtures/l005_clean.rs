// L005 clean fixture (linted as a service file): approved primitives only.
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn session_state() -> Arc<Mutex<u64>> {
    COUNTER.fetch_add(1, Ordering::Relaxed);
    Arc::new(Mutex::new(0))
}

fn snapshot_slot() -> RwLock<u64> {
    RwLock::new(0)
}
