// L004 clean fixture: writes go through the maintenance facade.
fn load(system: &mut BeasSystem, rows: Vec<Row>) -> Result<()> {
    system.insert_rows("call", rows)?;
    system.delete_rows("call", |r| r.is_empty())?;
    Ok(())
}

// mentioning a mutator name without calling it as a method is fine
fn describe() -> &'static str {
    "table_mut"
}
