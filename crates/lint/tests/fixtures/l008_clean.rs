// L008 fixture (clean): a kernel file that routes its key hashing through
// `beas_common::key` and carries the paired differential-test reference —
// bit-exactness with the row engine is pinned by tests/vectorized_semantics.rs.
use beas_common::canonical_key_hash;
use std::collections::HashMap;

fn build_table(rows: &[RowRef<'_>], keys: &[usize]) -> HashMap<u64, Vec<usize>> {
    let mut table: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, row) in rows.iter().enumerate() {
        if let Some(h) = canonical_key_hash(row, keys) {
            table.entry(h).or_default().push(i);
        }
    }
    table
}
