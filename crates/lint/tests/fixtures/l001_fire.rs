// L001 fixture: evaluation error swallowed by unwrap_or.
fn filter_rows(rows: &[Row], pred: &BoundExpr) -> Vec<Row> {
    rows.iter()
        .filter(|r| evaluate(pred, r).unwrap_or(Value::Bool(false)).is_truthy())
        .cloned()
        .collect()
}

fn probe(pred: &BoundExpr, row: &Row) -> Option<Value> {
    evaluate_predicate(pred, row).ok()
}
