// L003 fixture (linted as an executor file): a blocking aggregate loop
// that never checkpoints the session quota.
fn aggregate_groups(rows: &[Row]) -> Vec<Row> {
    let mut out = Vec::new();
    for row in rows {
        out.push(row.clone());
    }
    out
}
