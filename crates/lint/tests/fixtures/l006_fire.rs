// L006 fixture: an allow attribute with no justification anywhere near it.

#[allow(dead_code)]
fn unused() {}
