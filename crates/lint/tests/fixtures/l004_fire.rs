// L004 fixture (linted as an engine file): direct storage mutation outside
// the storage crate and the maintenance facade.
fn load(db: &mut Database) -> Result<()> {
    let table = db.table_mut("call")?;
    table.delete_where(|r| r.is_empty());
    Ok(())
}
