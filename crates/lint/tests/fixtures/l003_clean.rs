// L003 clean fixture (linted as an executor file): the blocking loop
// checkpoints, the pure comparator is exempt, and a non-blocking fn with a
// loop never fires.
fn aggregate_groups(rows: &[Row], quota: &QuotaTracker) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        if i % BLOCKING_CHECK_ROWS == 0 {
            quota.checkpoint()?;
        }
        out.push(row.clone());
    }
    Ok(out)
}

fn sort_cmp(a: &Row, b: &Row) -> std::cmp::Ordering {
    a.len().cmp(&b.len())
}

fn project(rows: &[Row]) -> Vec<Row> {
    let mut out = Vec::new();
    for row in rows {
        out.push(row.clone());
    }
    out
}
