//! A crate root (linted as src/lib.rs) that forgot the unsafe_code forbid.

pub fn answer() -> u32 {
    42
}
