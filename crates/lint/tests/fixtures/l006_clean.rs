// kept for the doctest harness, which compiles but never calls it
#[allow(dead_code)]
fn unused() {}

#[allow(clippy::too_many_arguments)] // all five binder contexts are needed
fn bind(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8, g: u8, h: u8) {}
