// L001 clean fixture: the evaluation Result propagates.
fn filter_rows(rows: &[Row], pred: &BoundExpr) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    for r in rows {
        if evaluate(pred, r)?.is_truthy() {
            out.push(r.clone());
        }
    }
    Ok(out)
}

// chaining a non-swallowing method is fine
fn render(pred: &BoundExpr, row: &Row) -> Result<String> {
    Ok(evaluate(pred, row)?.to_string())
}

// `ok` mentioned without being chained off an evaluate call is fine
fn unrelated(r: Result<u32, ()>) -> Option<u32> {
    r.ok()
}
