//! Per-session resource quotas and cooperative cancellation.
//!
//! The paper's contract is that BEAS decides *before* execution whether a
//! query fits a resource budget.  A concurrent query service needs the
//! runtime half of that contract too: a query admitted on an estimate must
//! stop — promptly and cleanly — the moment its *actual* data access
//! exceeds the budget it was admitted under, or its deadline passes.
//!
//! * [`ResourceQuota`] is the declarative budget a session carries: a cap
//!   on tuples accessed, a cap on answer rows, and a wall-clock deadline.
//! * [`QuotaTracker`] is the shared runtime enforcer derived from a quota
//!   when a query starts.  Both executors charge their data access against
//!   it (the same `tuples_accessed` accounting the metrics report) and
//!   check it *cooperatively* at morsel / fetch-step / scan-row
//!   granularity — there is no preemption, so a trip surfaces at the next
//!   checkpoint as a structured [`BeasError::QuotaExceeded`].
//!
//! The tracker is all atomics, so morsel workers on several threads charge
//! the same budget without locks, and a trip observed by one worker stops
//! the others at their next checkpoint.

use crate::error::{BeasError, Result};
use beas_obs::clock;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// How often (in charged tuples) the tracker re-checks the wall-clock
/// deadline: reading the clock costs tens of nanoseconds, so per-row checks
/// would dominate cheap scans.  A stale check window of 4096 tuples keeps
/// deadline overshoot bounded by microseconds of *scan* work; phases that
/// touch no base data (a blocking sort or aggregation fold) checkpoint
/// themselves every few thousand processed rows inside the engine's
/// blocking loops (`engine::executor::BLOCKING_CHECK_ROWS`), so they are
/// bounded the same way.
const DEADLINE_CHECK_TUPLES: u64 = 4096;

/// A declarative per-session resource budget.
///
/// `None` in any field means "unlimited" for that resource; the default
/// quota is unlimited in every dimension.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceQuota {
    /// Maximum base-table / index tuples a query may access.
    pub max_tuples: Option<u64>,
    /// Maximum answer rows a query may return.
    pub max_rows: Option<u64>,
    /// Wall-clock budget per query, measured from admission.
    pub deadline: Option<Duration>,
}

impl ResourceQuota {
    /// The unlimited quota (every field `None`).
    pub fn unlimited() -> Self {
        ResourceQuota::default()
    }

    /// Cap the tuples a query may access.
    pub fn with_max_tuples(mut self, max_tuples: u64) -> Self {
        self.max_tuples = Some(max_tuples);
        self
    }

    /// Cap the answer rows a query may return.
    pub fn with_max_rows(mut self, max_rows: u64) -> Self {
        self.max_rows = Some(max_rows);
        self
    }

    /// Give each query a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Whether every dimension is unlimited.
    pub fn is_unlimited(&self) -> bool {
        self.max_tuples.is_none() && self.max_rows.is_none() && self.deadline.is_none()
    }

    /// Start enforcing this quota: the deadline clock starts now.
    pub fn tracker(&self) -> QuotaTracker {
        QuotaTracker {
            tuples: AtomicU64::new(0),
            max_tuples: self.max_tuples.unwrap_or(u64::MAX),
            max_rows: self.max_rows.unwrap_or(u64::MAX),
            deadline: self.deadline.map(|d| (clock::now(), d)),
            tripped: AtomicU8::new(TRIP_NONE),
            rows_seen: AtomicU64::new(0),
        }
    }
}

// Trip causes, latched first-writer-wins so every thread reports the same
// resource in its error.
const TRIP_NONE: u8 = 0;
const TRIP_TUPLES: u8 = 1;
const TRIP_ROWS: u8 = 2;
const TRIP_DEADLINE: u8 = 3;
const TRIP_CANCELLED: u8 = 4;

/// The runtime enforcer of a [`ResourceQuota`], shared by every operator of
/// one query execution (and by every worker thread of a parallel stage).
///
/// Enforcement is cooperative: executors call [`QuotaTracker::charge_tuples`]
/// as they touch base data and [`QuotaTracker::checkpoint`] at scheduling
/// points (morsel claims, fetch steps).  Once any call returns an error the
/// tracker latches *tripped*, so every subsequent check on any thread fails
/// fast and the whole pipeline unwinds promptly.
#[derive(Debug)]
pub struct QuotaTracker {
    tuples: AtomicU64,
    max_tuples: u64,
    max_rows: u64,
    /// Deadline as (start, budget); `checkpoint` compares elapsed time.
    deadline: Option<(Instant, Duration)>,
    /// `TRIP_NONE`, or the first cause that tripped the tracker — latched
    /// first-writer-wins, so every later failure on any thread reports the
    /// same resource.
    tripped: AtomicU8,
    /// The answer-row count behind a rows trip, written before the latch so
    /// re-reports carry the real diagnostic.
    rows_seen: AtomicU64,
}

impl QuotaTracker {
    /// Tuples charged so far.
    pub fn tuples_used(&self) -> u64 {
        self.tuples.load(Ordering::Relaxed)
    }

    /// Whether the quota has already tripped (or was cancelled).
    pub fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::Acquire) != TRIP_NONE
    }

    /// Cancel the query from outside (treated as a tripped quota: every
    /// subsequent checkpoint fails with resource `"cancelled"`).
    pub fn cancel(&self) {
        self.trip(TRIP_CANCELLED);
    }

    /// Latch `cause` as the trip reason unless another thread already
    /// tripped, and return the error describing the winning cause.
    fn trip(&self, cause: u8) -> BeasError {
        let _ =
            self.tripped
                .compare_exchange(TRIP_NONE, cause, Ordering::AcqRel, Ordering::Acquire);
        self.trip_error()
    }

    /// The error for the latched trip cause (`is_tripped` must hold).
    fn trip_error(&self) -> BeasError {
        match self.tripped.load(Ordering::Acquire) {
            TRIP_ROWS => BeasError::QuotaExceeded {
                resource: "rows",
                used: self.rows_seen.load(Ordering::Acquire),
                limit: self.max_rows,
            },
            TRIP_DEADLINE => {
                let (start, budget) = self.deadline.unwrap_or((clock::now(), Duration::ZERO));
                BeasError::QuotaExceeded {
                    resource: "deadline_ms",
                    used: start.elapsed().as_millis() as u64,
                    limit: budget.as_millis() as u64,
                }
            }
            TRIP_CANCELLED => BeasError::QuotaExceeded {
                resource: "cancelled",
                used: 0,
                limit: 0,
            },
            _ => BeasError::QuotaExceeded {
                resource: "tuples",
                used: self.tuples_used(),
                limit: self.max_tuples,
            },
        }
    }

    /// Charge `n` accessed tuples against the budget.  Crossing the tuple
    /// cap trips the tracker; with a deadline set, the clock is re-checked
    /// on the first charge and then once every few thousand charged tuples
    /// (`DEADLINE_CHECK_TUPLES`) so per-row charging stays cheap.  Work
    /// that touches no base data between charges (a large blocking sort)
    /// must call [`QuotaTracker::checkpoint`] periodically itself, as the
    /// engine's blocking loops do — deadline enforcement is cooperative,
    /// not preemptive.
    pub fn charge_tuples(&self, n: u64) -> Result<()> {
        if n == 0 {
            return self.fail_if_tripped();
        }
        let before = self.tuples.fetch_add(n, Ordering::Relaxed);
        let after = before.saturating_add(n);
        if after > self.max_tuples {
            return Err(self.trip(TRIP_TUPLES));
        }
        if self.deadline.is_some()
            && (before == 0 || before / DEADLINE_CHECK_TUPLES != after / DEADLINE_CHECK_TUPLES)
        {
            return self.checkpoint();
        }
        self.fail_if_tripped()
    }

    /// Cooperative cancellation point: fails if the quota has tripped on any
    /// thread or the wall-clock deadline has passed.  Called at morsel and
    /// fetch-step boundaries.
    pub fn checkpoint(&self) -> Result<()> {
        self.fail_if_tripped()?;
        if let Some((start, budget)) = self.deadline {
            if start.elapsed() > budget {
                return Err(self.trip(TRIP_DEADLINE));
            }
        }
        Ok(())
    }

    /// Check the quota's answer-row cap against `rows` produced rows
    /// (called once at finalization; rows are not charged incrementally
    /// because LIMIT already bounds streaming answers).
    pub fn check_rows(&self, rows: u64) -> Result<()> {
        if rows > self.max_rows {
            // record the count before latching so later re-reports on any
            // thread carry the real diagnostic
            self.rows_seen.store(rows, Ordering::Release);
            return Err(self.trip(TRIP_ROWS));
        }
        Ok(())
    }

    fn fail_if_tripped(&self) -> Result<()> {
        if self.is_tripped() {
            return Err(self.trip_error());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_quota_never_trips() {
        let tracker = ResourceQuota::unlimited().tracker();
        tracker.charge_tuples(u64::MAX / 2).unwrap();
        tracker.checkpoint().unwrap();
        assert!(!tracker.is_tripped());
        assert!(ResourceQuota::default().is_unlimited());
    }

    #[test]
    fn tuple_cap_trips_and_latches() {
        let tracker = ResourceQuota::unlimited().with_max_tuples(10).tracker();
        tracker.charge_tuples(7).unwrap();
        assert_eq!(tracker.tuples_used(), 7);
        tracker.charge_tuples(3).unwrap(); // exactly at the cap is fine
        let err = tracker.charge_tuples(1).unwrap_err();
        assert_eq!(err.kind(), "quota_exceeded");
        assert!(err.to_string().contains("tuples"));
        // latched: even a zero-cost checkpoint now fails
        assert!(tracker.is_tripped());
        assert!(tracker.checkpoint().is_err());
        assert!(tracker.charge_tuples(0).is_err());
    }

    #[test]
    fn deadline_trips_at_a_checkpoint() {
        let tracker = ResourceQuota::unlimited()
            .with_deadline(Duration::ZERO)
            .tracker();
        std::thread::sleep(Duration::from_millis(2));
        let err = tracker.checkpoint().unwrap_err();
        assert_eq!(err.kind(), "quota_exceeded");
        assert!(err.to_string().contains("deadline"));
    }

    #[test]
    fn cancel_behaves_like_a_trip() {
        let tracker = ResourceQuota::unlimited().tracker();
        tracker.cancel();
        assert!(tracker.is_tripped());
        let err = tracker.charge_tuples(1).unwrap_err();
        assert!(err.to_string().contains("cancelled"), "{err}");
    }

    #[test]
    fn latched_trips_report_their_actual_cause_on_every_thread() {
        // a deadline trip must not masquerade as a tuples error in later
        // failures (e.g. another morsel worker's next charge)
        let tracker = ResourceQuota::unlimited()
            .with_deadline(Duration::ZERO)
            .tracker();
        std::thread::sleep(Duration::from_millis(2));
        let first = tracker.checkpoint().unwrap_err();
        assert!(first.to_string().contains("deadline"), "{first}");
        let second = tracker.charge_tuples(5).unwrap_err();
        assert!(second.to_string().contains("deadline"), "{second}");
    }

    #[test]
    fn deadline_is_checked_on_the_first_charge() {
        // small scans (well under the 4096-tuple re-check window) must
        // still observe an already-expired deadline
        let tracker = ResourceQuota::unlimited()
            .with_deadline(Duration::ZERO)
            .tracker();
        std::thread::sleep(Duration::from_millis(2));
        assert!(tracker.charge_tuples(1).is_err());
    }

    #[test]
    fn row_cap_checked_at_finalization() {
        let tracker = ResourceQuota::unlimited().with_max_rows(5).tracker();
        tracker.check_rows(5).unwrap();
        assert!(tracker.check_rows(6).is_err());
        assert!(tracker.is_tripped());
        // a latched rows trip re-reports with the real numbers, not zeros
        let again = tracker.charge_tuples(1).unwrap_err();
        let text = again.to_string();
        assert!(
            text.contains("rows") && text.contains('6') && text.contains('5'),
            "{text}"
        );
    }

    #[test]
    fn trackers_share_across_threads() {
        let quota = ResourceQuota::unlimited().with_max_tuples(10_000);
        let tracker = quota.tracker();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..25 {
                        let _ = tracker.charge_tuples(100);
                    }
                });
            }
        });
        // 4 × 25 × 100 = 10000 charged; the cap is 10000 so nothing tripped
        assert_eq!(tracker.tuples_used(), 10_000);
        assert!(!tracker.is_tripped());
        assert!(tracker.charge_tuples(1).is_err());
    }
}
