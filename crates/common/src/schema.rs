//! Relation schemas: base-table schemas stored in the catalog and the
//! derived schemas of intermediate results flowing through query plans.

use crate::error::{BeasError, Result};
use crate::types::DataType;
use std::fmt;

/// A column definition in a base table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (lower-cased at catalog registration time).
    pub name: String,
    /// Declared data type.
    pub data_type: DataType,
    /// Whether NULLs are allowed.
    pub nullable: bool,
}

impl ColumnDef {
    /// Construct a non-nullable column definition.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef {
            name: name.into().to_ascii_lowercase(),
            data_type,
            nullable: false,
        }
    }

    /// Construct a nullable column definition.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef {
            nullable: true,
            ..ColumnDef::new(name, data_type)
        }
    }
}

/// Schema of a base table registered in the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name (lower-cased).
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Build a table schema, rejecting duplicate column names.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Result<Self> {
        let name = name.into().to_ascii_lowercase();
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.clone()) {
                return Err(BeasError::catalog(format!(
                    "duplicate column {:?} in table {:?}",
                    c.name, name
                )));
            }
        }
        if columns.is_empty() {
            return Err(BeasError::catalog(format!(
                "table {name:?} must have at least one column"
            )));
        }
        Ok(TableSchema { name, columns })
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let name = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column definition by name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// All column names in declaration order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Resolve a list of column names to indices, erroring on unknown names.
    pub fn resolve_columns(&self, names: &[String]) -> Result<Vec<usize>> {
        names
            .iter()
            .map(|n| {
                self.column_index(n).ok_or_else(|| {
                    BeasError::binding(format!("unknown column {:?} in table {:?}", n, self.name))
                })
            })
            .collect()
    }
}

/// A fully-qualified reference to a column of a base table.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    /// Table (or alias) the column belongs to.
    pub table: String,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Build a column reference, lower-casing both parts.
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: table.into().to_ascii_lowercase(),
            column: column.into().to_ascii_lowercase(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// Schema of an intermediate or final result: a list of named, typed fields.
///
/// Fields keep an optional *origin* (`table`) so that the planner can trace a
/// projected column back to the base-table attribute it came from — bounded
/// plan generation needs this to decide which access constraints apply.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

/// One field of an intermediate-result schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Output name of the field.
    pub name: String,
    /// Data type.
    pub data_type: DataType,
    /// Originating table/alias, when the field is a direct column reference.
    pub table: Option<String>,
}

impl Field {
    /// A field originating from a base-table column.
    pub fn base(table: impl Into<String>, name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into().to_ascii_lowercase(),
            data_type,
            table: Some(table.into().to_ascii_lowercase()),
        }
    }

    /// A derived field (expression output, aggregate, ...).
    pub fn derived(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into().to_ascii_lowercase(),
            data_type,
            table: None,
        }
    }

    /// The fully-qualified name `table.column` when the origin is known,
    /// otherwise just the field name.
    pub fn qualified_name(&self) -> String {
        match &self.table {
            Some(t) => format!("{t}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Empty schema (zero columns), used by plans that produce no columns.
    pub fn empty() -> Self {
        Schema { fields: vec![] }
    }

    /// Derive an intermediate schema exposing every column of a base table
    /// under alias `alias`.
    pub fn from_table(alias: &str, table: &TableSchema) -> Self {
        Schema {
            fields: table
                .columns
                .iter()
                .map(|c| Field::base(alias, &c.name, c.data_type))
                .collect(),
        }
    }

    /// The fields of the schema.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Append the fields of `other` (used when joining two inputs).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// Find a field index by name, optionally qualified by table/alias.
    ///
    /// Returns an error if the reference is ambiguous (matches more than one
    /// field) or unknown.
    pub fn resolve(&self, table: Option<&str>, column: &str) -> Result<usize> {
        let column = column.to_ascii_lowercase();
        let table = table.map(|t| t.to_ascii_lowercase());
        let matches: Vec<usize> = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.name == column
                    && match (&table, &f.table) {
                        (None, _) => true,
                        (Some(t), Some(ft)) => t == ft,
                        (Some(_), None) => false,
                    }
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            0 => Err(BeasError::binding(format!(
                "unknown column {}{}",
                table.map(|t| format!("{t}.")).unwrap_or_default(),
                column
            ))),
            1 => Ok(matches[0]),
            _ => Err(BeasError::binding(format!(
                "ambiguous column reference {column:?}"
            ))),
        }
    }

    /// Field at index `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Index of the field whose qualified origin is `table.column`, if any.
    pub fn index_of_origin(&self, table: &str, column: &str) -> Option<usize> {
        let table = table.to_ascii_lowercase();
        let column = column.to_ascii_lowercase();
        self.fields
            .iter()
            .position(|f| f.table.as_deref() == Some(table.as_str()) && f.name == column)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self
            .fields
            .iter()
            .map(|fl| format!("{}:{}", fl.qualified_name(), fl.data_type))
            .collect();
        write!(f, "[{}]", cols.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call_schema() -> TableSchema {
        TableSchema::new(
            "call",
            vec![
                ColumnDef::new("pnum", DataType::Str),
                ColumnDef::new("recnum", DataType::Str),
                ColumnDef::new("date", DataType::Date),
                ColumnDef::new("region", DataType::Str),
            ],
        )
        .unwrap()
    }

    #[test]
    fn table_schema_lookup() {
        let s = call_schema();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.column_index("RECNUM"), Some(1));
        assert_eq!(s.column_index("missing"), None);
        assert_eq!(s.column("date").unwrap().data_type, DataType::Date);
        assert_eq!(
            s.resolve_columns(&["pnum".into(), "region".into()])
                .unwrap(),
            vec![0, 3]
        );
        assert!(s.resolve_columns(&["nope".into()]).is_err());
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("A", DataType::Str),
            ],
        );
        assert!(r.is_err());
        assert!(TableSchema::new("t", vec![]).is_err());
    }

    #[test]
    fn derived_schema_resolution() {
        let call = call_schema();
        let s = Schema::from_table("c", &call);
        assert_eq!(s.len(), 4);
        assert_eq!(s.resolve(Some("c"), "region").unwrap(), 3);
        assert_eq!(s.resolve(None, "pnum").unwrap(), 0);
        assert!(s.resolve(Some("x"), "pnum").is_err());
        assert!(s.resolve(None, "nope").is_err());
    }

    #[test]
    fn join_schema_detects_ambiguity() {
        let call = call_schema();
        let a = Schema::from_table("a", &call);
        let b = Schema::from_table("b", &call);
        let j = a.join(&b);
        assert_eq!(j.len(), 8);
        assert!(j.resolve(None, "pnum").is_err()); // ambiguous
        assert_eq!(j.resolve(Some("b"), "pnum").unwrap(), 4);
        assert_eq!(j.index_of_origin("a", "pnum"), Some(0));
        assert_eq!(j.index_of_origin("b", "region"), Some(7));
    }

    #[test]
    fn column_ref_display() {
        let c = ColumnRef::new("Call", "PNUM");
        assert_eq!(c.to_string(), "call.pnum");
    }

    #[test]
    fn schema_display() {
        let s = Schema::new(vec![
            Field::base("call", "region", DataType::Str),
            Field::derived("cnt", DataType::Int),
        ]);
        assert_eq!(s.to_string(), "[call.region:VARCHAR, cnt:INT]");
        assert_eq!(s.field(1).qualified_name(), "cnt");
    }
}
