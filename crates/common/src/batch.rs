//! Columnar morsel representation for the vectorized execution path.
//!
//! A [`ColumnBatch`] is a column-major view of one morsel of rows: each
//! column is either a typed array (`Vec<i64>` / `Vec<f64>`) when every
//! non-NULL value in the morsel shares that type, or a generic array of
//! `&Value` references otherwise.  NULLs are tracked out-of-band in a packed
//! validity bitmap, so typed columns can hold a `0` sentinel at NULL slots
//! without ambiguity.
//!
//! The batch *borrows* the underlying row segment — building one never
//! clones a string — which is what makes kernel-style evaluation cheaper
//! than the row path's per-row `Value` cloning.  The row engine remains the
//! semantics reference: kernels evaluating over a batch must produce
//! bit-identical results (see `tests/vectorized_semantics.rs`), and
//! [`ColumnBatch::check_invariants`] pins the layout contract they rely on.

#[cfg(any(debug_assertions, feature = "validate"))]
use crate::error::{BeasError, Result};
use crate::tuple::Row;
use crate::value::Value;

/// A SQL NULL with `'static` lifetime, so generic columns and accessors can
/// hand out `&Value` for invalid slots without owning anything.
pub const NULL_VALUE: Value = Value::Null;

/// Column payload: typed fast-path arrays or the generic `Value` fallback.
///
/// Typed arrays hold `0` / `0.0` sentinels at slots whose validity bit is
/// clear; the generic array keeps the original `&Value` (including
/// `Value::Null` itself at invalid slots).
#[derive(Debug, Clone)]
pub enum ColumnData<'a> {
    /// Every non-NULL value in the column is `Value::Int`.
    Int(Vec<i64>),
    /// Every non-NULL value in the column is `Value::Float`.
    Float(Vec<f64>),
    /// Mixed or non-numeric column: borrowed references into the morsel.
    Generic(Vec<&'a Value>),
}

/// One column of a batch: payload plus the packed validity bitmap
/// (bit `i` of word `i / 64` set ⇔ row `i` is non-NULL).
#[derive(Debug, Clone)]
pub struct Column<'a> {
    data: ColumnData<'a>,
    validity: Vec<u64>,
    len: usize,
}

impl<'a> Column<'a> {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The column payload.
    pub fn data(&self) -> &ColumnData<'a> {
        &self.data
    }

    /// Whether row `i` holds a non-NULL value.
    pub fn is_valid(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.validity[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// The packed validity words (`ceil(len / 64)` of them, tail bits zero).
    pub fn validity_words(&self) -> &[u64] {
        &self.validity
    }

    /// The value at row `i` as a reference, with no allocation.
    ///
    /// Typed columns materialize a stack-only `Value::Int` / `Value::Float`
    /// inside [`ValueRef::Num`]; NULL slots come back as `&NULL_VALUE`.
    pub fn value_ref(&self, i: usize) -> ValueRef<'_> {
        if !self.is_valid(i) {
            // Typed columns store a sentinel at invalid slots; surface the
            // logical NULL instead.
            if let ColumnData::Generic(vals) = &self.data {
                return ValueRef::Ref(vals[i]);
            }
            return ValueRef::Ref(&NULL_VALUE);
        }
        match &self.data {
            ColumnData::Int(vals) => ValueRef::Num(Value::Int(vals[i])),
            ColumnData::Float(vals) => ValueRef::Num(Value::Float(vals[i])),
            ColumnData::Generic(vals) => ValueRef::Ref(vals[i]),
        }
    }

    /// The value at row `i` as an owned `Value` (clones strings — use
    /// [`Column::value_ref`] in comparison kernels).
    pub fn value_owned(&self, i: usize) -> Value {
        match self.value_ref(i) {
            ValueRef::Num(v) => v,
            ValueRef::Ref(v) => v.clone(),
        }
    }
}

/// A borrowed-or-numeric value handle: comparison kernels read through
/// [`ValueRef::get`] without ever cloning heap data.
#[derive(Debug)]
pub enum ValueRef<'a> {
    /// A stack-materialized `Value::Int` / `Value::Float` from a typed array.
    Num(Value),
    /// A reference into the morsel (or a literal / materialized operand).
    Ref(&'a Value),
}

impl ValueRef<'_> {
    /// The underlying value.
    pub fn get(&self) -> &Value {
        match self {
            ValueRef::Num(v) => v,
            ValueRef::Ref(v) => v,
        }
    }
}

/// A column-major view of one morsel of rows.
///
/// Rows of differing arity are tolerated (missing cells read as NULL) so a
/// batch can be built over any `&[Row]`, but in practice morsels come from
/// one table segment and are uniform.
#[derive(Debug, Clone)]
pub struct ColumnBatch<'a> {
    columns: Vec<Option<Column<'a>>>,
    len: usize,
}

impl<'a> ColumnBatch<'a> {
    /// Build a batch from a row morsel.  Column count is taken from the
    /// first row; each column is typed `Int` / `Float` when every non-NULL
    /// cell agrees on that type, generic otherwise.
    pub fn from_rows(rows: &'a [Row]) -> Self {
        Self::build(rows, None)
    }

    /// Build a batch materializing only the columns flagged in `needed`
    /// (missing mask entries count as not needed).  Unbuilt columns read as
    /// absent from [`ColumnBatch::column`] — callers must reference only
    /// masked-in columns, which the engine's coverage check guarantees.
    /// Over wide tables this is the difference between O(arity) and
    /// O(referenced columns) work per morsel.
    pub fn from_rows_masked(rows: &'a [Row], needed: &[bool]) -> Self {
        Self::build(rows, Some(needed))
    }

    fn build(rows: &'a [Row], needed: Option<&[bool]>) -> Self {
        let len = rows.len();
        let arity = rows.first().map_or(0, |r| r.len());
        let words = len.div_ceil(64);
        let mut columns = Vec::with_capacity(arity);
        for col in 0..arity {
            if let Some(mask) = needed {
                if !mask.get(col).copied().unwrap_or(false) {
                    columns.push(None);
                    continue;
                }
            }
            // Pass 1: pick the narrowest representation that loses nothing.
            let mut kind = CellKind::AllNull;
            for row in rows {
                kind = kind.meet(row.get(col).unwrap_or(&NULL_VALUE));
                if kind == CellKind::Mixed {
                    break;
                }
            }
            // Pass 2: fill the payload and the validity bitmap.
            let mut validity = vec![0u64; words];
            let data = match kind {
                CellKind::AllNull | CellKind::Int => {
                    let mut vals = vec![0i64; len];
                    for (i, row) in rows.iter().enumerate() {
                        if let Some(Value::Int(v)) = row.get(col) {
                            vals[i] = *v;
                            validity[i / 64] |= 1u64 << (i % 64);
                        }
                    }
                    ColumnData::Int(vals)
                }
                CellKind::Float => {
                    let mut vals = vec![0f64; len];
                    for (i, row) in rows.iter().enumerate() {
                        if let Some(Value::Float(v)) = row.get(col) {
                            vals[i] = *v;
                            validity[i / 64] |= 1u64 << (i % 64);
                        }
                    }
                    ColumnData::Float(vals)
                }
                CellKind::Mixed => {
                    let mut vals = Vec::with_capacity(len);
                    for (i, row) in rows.iter().enumerate() {
                        let v = row.get(col).unwrap_or(&NULL_VALUE);
                        if !v.is_null() {
                            validity[i / 64] |= 1u64 << (i % 64);
                        }
                        vals.push(v);
                    }
                    ColumnData::Generic(vals)
                }
            };
            columns.push(Some(Column {
                data,
                validity,
                len,
            }));
        }
        ColumnBatch { columns, len }
    }

    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column `i`, if present and materialized (masked-out columns of a
    /// [`ColumnBatch::from_rows_masked`] batch read as absent).
    pub fn column(&self, i: usize) -> Option<&Column<'a>> {
        self.columns.get(i).and_then(|c| c.as_ref())
    }

    /// Batch-layout validator for the deep-validation builds: every column
    /// has the batch's row count, the validity bitmap has exactly
    /// `ceil(len / 64)` words with all tail bits clear, typed arrays hold
    /// the `0` sentinel at invalid slots, and generic columns keep the
    /// validity bit coherent with the `Value` tag (`bit set ⇔ non-NULL`).
    #[cfg(any(debug_assertions, feature = "validate"))]
    pub fn check_invariants(&self) -> Result<()> {
        let words = self.len.div_ceil(64);
        for (c, col) in self.columns.iter().enumerate() {
            let Some(col) = col else {
                // Masked-out column: nothing was materialized to validate.
                continue;
            };
            if col.len != self.len {
                return Err(layout_err(format!(
                    "column {c} has {} rows, batch has {}",
                    col.len, self.len
                )));
            }
            let data_len = match &col.data {
                ColumnData::Int(v) => v.len(),
                ColumnData::Float(v) => v.len(),
                ColumnData::Generic(v) => v.len(),
            };
            if data_len != self.len {
                return Err(layout_err(format!(
                    "column {c} payload has {data_len} slots, batch has {}",
                    self.len
                )));
            }
            if col.validity.len() != words {
                return Err(layout_err(format!(
                    "column {c} validity has {} words, expected {words}",
                    col.validity.len()
                )));
            }
            if !self.len.is_multiple_of(64) {
                if let Some(tail) = col.validity.last() {
                    if tail >> (self.len % 64) != 0 {
                        return Err(layout_err(format!(
                            "column {c} validity tail bits set past row {}",
                            self.len
                        )));
                    }
                }
            }
            for i in 0..self.len {
                let valid = col.is_valid(i);
                match &col.data {
                    ColumnData::Int(v) => {
                        if !valid && v[i] != 0 {
                            return Err(layout_err(format!(
                                "column {c} row {i}: NULL slot holds Int sentinel {}",
                                v[i]
                            )));
                        }
                    }
                    ColumnData::Float(v) => {
                        if !valid && v[i] != 0.0 {
                            return Err(layout_err(format!(
                                "column {c} row {i}: NULL slot holds Float sentinel {}",
                                v[i]
                            )));
                        }
                    }
                    ColumnData::Generic(v) => {
                        if valid == v[i].is_null() {
                            return Err(layout_err(format!(
                                "column {c} row {i}: validity bit {valid} but value {:?}",
                                v[i]
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(any(debug_assertions, feature = "validate"))]
fn layout_err(msg: String) -> BeasError {
    BeasError::execution(format!("ColumnBatch layout violation: {msg}"))
}

/// Representation chosen for a column, refined cell by cell.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CellKind {
    AllNull,
    Int,
    Float,
    Mixed,
}

impl CellKind {
    fn meet(self, v: &Value) -> CellKind {
        match (self, v) {
            (k, Value::Null) => k,
            (CellKind::AllNull | CellKind::Int, Value::Int(_)) => CellKind::Int,
            (CellKind::AllNull | CellKind::Float, Value::Float(_)) => CellKind::Float,
            _ => CellKind::Mixed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Date;

    fn date(s: &str) -> Value {
        Value::Date(s.parse::<Date>().unwrap())
    }

    #[test]
    fn typed_columns_and_validity() {
        let rows: Vec<Row> = vec![
            vec![Value::Int(1), Value::Float(1.5), Value::str("a")],
            vec![Value::Null, Value::Null, Value::Null],
            vec![Value::Int(3), Value::Float(-0.0), Value::str("c")],
        ];
        let batch = ColumnBatch::from_rows(&rows);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.arity(), 3);

        let ints = batch.column(0).unwrap();
        assert!(matches!(ints.data(), ColumnData::Int(v) if v == &vec![1, 0, 3]));
        assert!(ints.is_valid(0) && !ints.is_valid(1) && ints.is_valid(2));
        assert_eq!(ints.value_owned(1), Value::Null);
        assert_eq!(ints.value_owned(2), Value::Int(3));

        let floats = batch.column(1).unwrap();
        assert!(matches!(floats.data(), ColumnData::Float(_)));
        // -0.0 survives bit-exact in the typed array.
        match floats.data() {
            ColumnData::Float(v) => assert!(v[2] == 0.0 && v[2].is_sign_negative()),
            other => panic!("expected Float column, got {other:?}"),
        }

        let strs = batch.column(2).unwrap();
        assert!(matches!(strs.data(), ColumnData::Generic(_)));
        assert_eq!(strs.value_owned(0), Value::str("a"));
        assert!(!strs.is_valid(1));

        batch.check_invariants().unwrap();
    }

    #[test]
    fn mixed_numeric_column_stays_generic() {
        // Int(1) and Float(1.0) are SQL-equal but not the same Value; a
        // typed array would erase the distinction, so the column must fall
        // back to generic references.
        let rows: Vec<Row> = vec![vec![Value::Int(1)], vec![Value::Float(1.0)]];
        let batch = ColumnBatch::from_rows(&rows);
        let col = batch.column(0).unwrap();
        assert!(matches!(col.data(), ColumnData::Generic(_)));
        assert_eq!(col.value_owned(0), Value::Int(1));
        assert_eq!(col.value_owned(1), Value::Float(1.0));
        batch.check_invariants().unwrap();
    }

    #[test]
    fn all_null_column_and_empty_batch() {
        let rows: Vec<Row> = vec![vec![Value::Null], vec![Value::Null]];
        let batch = ColumnBatch::from_rows(&rows);
        let col = batch.column(0).unwrap();
        assert!(matches!(col.data(), ColumnData::Int(_)));
        assert!(!col.is_valid(0) && !col.is_valid(1));
        assert_eq!(col.value_owned(0), Value::Null);
        batch.check_invariants().unwrap();

        let empty: Vec<Row> = vec![];
        let batch = ColumnBatch::from_rows(&empty);
        assert_eq!(batch.len(), 0);
        assert_eq!(batch.arity(), 0);
        batch.check_invariants().unwrap();
    }

    #[test]
    fn nan_and_dates_round_trip() {
        let rows: Vec<Row> = vec![
            vec![Value::Float(f64::NAN), date("2016-01-02")],
            vec![Value::Float(2.5), Value::str("2016-01-02")],
        ];
        let batch = ColumnBatch::from_rows(&rows);
        match batch.column(0).unwrap().data() {
            ColumnData::Float(v) => assert!(v[0].is_nan() && v[1] == 2.5),
            other => panic!("expected Float column, got {other:?}"),
        }
        // Date and date-shaped Str mix → generic, values preserved verbatim.
        let col = batch.column(1).unwrap();
        assert!(matches!(col.data(), ColumnData::Generic(_)));
        assert_eq!(col.value_owned(0), date("2016-01-02"));
        assert_eq!(col.value_owned(1), Value::str("2016-01-02"));
        batch.check_invariants().unwrap();
    }

    #[test]
    fn masked_build_materializes_only_needed_columns() {
        let rows: Vec<Row> = vec![
            vec![Value::Int(1), Value::str("a"), Value::Float(1.5)],
            vec![Value::Int(2), Value::str("b"), Value::Null],
        ];
        // Mask shorter than the arity: missing entries count as not needed.
        let batch = ColumnBatch::from_rows_masked(&rows, &[false, true]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.arity(), 3);
        assert!(batch.column(0).is_none());
        assert!(batch.column(2).is_none());
        let strs = batch.column(1).unwrap();
        assert_eq!(strs.value_owned(0), Value::str("a"));
        assert_eq!(strs.value_owned(1), Value::str("b"));
        batch.check_invariants().unwrap();
    }

    #[test]
    fn validity_bitmap_spans_word_boundaries() {
        // 130 rows > two 64-bit words: NULL every third row.
        let rows: Vec<Row> = (0..130)
            .map(|i| {
                vec![if i % 3 == 0 {
                    Value::Null
                } else {
                    Value::Int(i)
                }]
            })
            .collect();
        let batch = ColumnBatch::from_rows(&rows);
        let col = batch.column(0).unwrap();
        assert_eq!(col.validity_words().len(), 3);
        for i in 0..130usize {
            assert_eq!(col.is_valid(i), i % 3 != 0, "row {i}");
        }
        batch.check_invariants().unwrap();
    }
}
