//! Runtime SQL values.
//!
//! `Value` is the unit of everything the engines move around: base-table
//! cells, partial tuples fetched through access-constraint indices,
//! intermediate results and final answers.  It implements SQL-ish comparison
//! semantics with NULL ordering last, numeric coercion between `Int` and
//! `Float`, and `Str`/`Date` coercion so that date literals written as
//! strings compare correctly.

use crate::date::Date;
use crate::error::{BeasError, Result};
use crate::types::DataType;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Calendar date.
    Date(Date),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// The data type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// Whether this value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as a boolean (for WHERE / HAVING evaluation).
    /// NULL maps to `false` under the usual "NULL is not true" semantics.
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Extract an `i64`, coercing floats with integral value.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Float(f) if f.fract() == 0.0 => Ok(*f as i64),
            other => Err(BeasError::type_err(format!(
                "expected INT, got {}",
                other.type_name()
            ))),
        }
    }

    /// Extract an `f64`, coercing integers.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            other => Err(BeasError::type_err(format!(
                "expected FLOAT, got {}",
                other.type_name()
            ))),
        }
    }

    /// Extract a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(BeasError::type_err(format!(
                "expected VARCHAR, got {}",
                other.type_name()
            ))),
        }
    }

    /// Extract a date, coercing string literals of form `YYYY-MM-DD`.
    pub fn as_date(&self) -> Result<Date> {
        match self {
            Value::Date(d) => Ok(*d),
            Value::Str(s) => s.parse(),
            other => Err(BeasError::type_err(format!(
                "expected DATE, got {}",
                other.type_name()
            ))),
        }
    }

    /// Extract a boolean.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(BeasError::type_err(format!(
                "expected BOOLEAN, got {}",
                other.type_name()
            ))),
        }
    }

    /// Human-readable type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self.data_type() {
            Some(t) => t.name(),
            None => "NULL",
        }
    }

    /// Attempt to cast this value to `target`.
    pub fn cast(&self, target: DataType) -> Result<Value> {
        match (self, target) {
            (Value::Null, _) => Ok(Value::Null),
            (v, t) if v.data_type() == Some(t) => Ok(v.clone()),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(*i as f64)),
            (Value::Float(f), DataType::Int) => Ok(Value::Int(*f as i64)),
            (Value::Str(s), DataType::Date) => Ok(Value::Date(s.parse()?)),
            (Value::Date(d), DataType::Str) => Ok(Value::Str(d.to_string())),
            (Value::Int(i), DataType::Str) => Ok(Value::Str(i.to_string())),
            (Value::Str(s), DataType::Int) => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| BeasError::type_err(format!("cannot cast {s:?} to INT"))),
            (Value::Str(s), DataType::Float) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| BeasError::type_err(format!("cannot cast {s:?} to FLOAT"))),
            (v, t) => Err(BeasError::type_err(format!(
                "cannot cast {} to {}",
                v.type_name(),
                t
            ))),
        }
    }

    /// SQL comparison between two values, coercing numeric and date/string
    /// operands.  Returns `None` when either side is NULL or the types are
    /// incomparable (SQL's "unknown").
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) if !b.is_nan() => Some(cmp_i64_f64(*a, *b)),
            (Float(a), Int(b)) if !a.is_nan() => Some(cmp_i64_f64(*b, *a).reverse()),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (Date(a), Str(b)) => b.parse::<crate::date::Date>().ok().map(|d| a.cmp(&d)),
            (Str(a), Date(b)) => a.parse::<crate::date::Date>().ok().map(|d| d.cmp(b)),
            _ => None,
        }
    }

    /// SQL equality: NULL = anything is unknown (`None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Total ordering used for sorting / grouping where NULLs must be placed
    /// deterministically: booleans < numerics (Int/Float compared exactly as
    /// one family, NaN after every number) < strings < dates < NULL, and
    /// values of different type families compare by type tag alone.
    ///
    /// Unlike [`Value::sql_cmp`] this never coerces a `Str` to a `Date` —
    /// coercing some string/date pairs but falling back to type tags for
    /// unparsable strings creates ordering cycles.  Every pair of values gets
    /// a verdict consistent with antisymmetry and transitivity, so sorting
    /// helpers built on this comparator can never panic or mis-sort.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Bool(_) => 0,
                Value::Int(_) => 1,
                Value::Float(_) => 1, // numeric family shares a rank
                Value::Str(_) => 2,
                Value::Date(_) => 3,
                Value::Null => 4,
            }
        }
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Greater,
            (_, Null) => Ordering::Less,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Int(a), Float(b)) => cmp_i64_f64_total(*a, *b),
            (Float(a), Int(b)) => cmp_i64_f64_total(*b, *a).reverse(),
            (Float(a), Float(b)) => cmp_f64_total(*a, *b),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// Addition with numeric coercion.
    pub fn add(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, |a, b| a.checked_add(b), |a, b| a + b, "+")
    }

    /// Subtraction with numeric coercion.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, |a, b| a.checked_sub(b), |a, b| a - b, "-")
    }

    /// Multiplication with numeric coercion.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, |a, b| a.checked_mul(b), |a, b| a * b, "*")
    }

    /// Division; integer division by zero is an execution error, and integer
    /// division yields a float to match common analytical expectations.
    pub fn div(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        let b = other.as_float()?;
        if b == 0.0 {
            return Err(BeasError::execution("division by zero"));
        }
        Ok(Value::Float(self.as_float()? / b))
    }

    /// Render the value as it would appear in query output.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format!("{f}"),
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
            Value::Date(d) => d.to_string(),
        }
    }
}

/// Exact comparison of an `i64` against a non-NaN `f64`, with no rounding of
/// the integer through an `as f64` cast (which collapses distinct values near
/// `2^63` and breaks transitivity).
fn cmp_i64_f64(a: i64, b: f64) -> Ordering {
    debug_assert!(!b.is_nan());
    // Outside i64's range (including infinities) the verdict is immediate.
    // 2^63 and -2^63 are exactly representable.
    const TWO_63: f64 = 9_223_372_036_854_775_808.0;
    if b >= TWO_63 {
        return Ordering::Less;
    }
    if b < -TWO_63 {
        return Ordering::Greater;
    }
    // |b| < 2^63, so truncation fits in i64 exactly.
    let t = b.trunc() as i64;
    match a.cmp(&t) {
        Ordering::Equal => {
            let frac = b - b.trunc();
            if frac > 0.0 {
                Ordering::Less
            } else if frac < 0.0 {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        }
        o => o,
    }
}

/// [`cmp_i64_f64`] extended to a total order: NaN sorts after every number.
fn cmp_i64_f64_total(a: i64, b: f64) -> Ordering {
    if b.is_nan() {
        Ordering::Less
    } else {
        cmp_i64_f64(a, b)
    }
}

/// Total order on floats: NaN sorts after every number, NaN == NaN, and
/// (unlike `f64::total_cmp`) -0.0 == 0.0 so the order refines `PartialEq`.
fn cmp_f64_total(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.partial_cmp(&b).unwrap(),
    }
}

fn numeric_binop(
    a: &Value,
    b: &Value,
    int_op: impl Fn(i64, i64) -> Option<i64>,
    float_op: impl Fn(f64, f64) -> f64,
    op_name: &str,
) -> Result<Value> {
    match (a, b) {
        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
        (Value::Int(x), Value::Int(y)) => int_op(*x, *y).map(Value::Int).ok_or_else(|| {
            BeasError::execution(format!("integer overflow evaluating {x} {op_name} {y}"))
        }),
        _ => {
            let (x, y) = (a.as_float()?, b.as_float()?);
            Ok(Value::Float(float_op(x, y)))
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // Equality used for grouping / distinct / hash joins: NULL == NULL so
        // grouping collapses NULL keys, and Int/Float compare numerically
        // (they also hash identically).  Str/Date coercion is deliberately
        // *not* applied here — it lives in `sql_eq` — so that `Eq` stays
        // consistent with `Hash`.
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Null, _) | (_, Value::Null) => false,
            (Value::Str(_), Value::Date(_)) | (Value::Date(_), Value::Str(_)) => false,
            _ => self.sql_cmp(other) == Some(Ordering::Equal),
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Int and Float that compare equal must hash equal; hash the f64
            // bits of the numeric value for both.
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                // -0.0 == 0.0 under `eq`, so they must hash identically;
                // canonicalize NaN bit patterns for the same reason.
                let canonical = if *f == 0.0 {
                    0.0f64
                } else if f.is_nan() {
                    f64::NAN
                } else {
                    *f
                };
                canonical.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "'{s}'"),
            other => f.write_str(&other.render()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercion_in_comparison() {
        assert_eq!(
            Value::Int(3).sql_cmp(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(2.5).sql_cmp(&Value::Int(3)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Int(4).sql_eq(&Value::Int(4)), Some(true));
        assert_eq!(Value::Int(4).sql_eq(&Value::Int(5)), Some(false));
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert!(!Value::Null.is_truthy());
    }

    #[test]
    fn date_string_coercion() {
        let d = Value::Date(Date::new(2016, 7, 4).unwrap());
        let s = Value::str("2016-07-04");
        assert_eq!(d.sql_eq(&s), Some(true));
        assert_eq!(
            s.sql_cmp(&Value::Date(Date::new(2016, 8, 1).unwrap())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn eq_and_hash_consistent_for_numeric_family() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Int(3));
        assert!(set.contains(&Value::Float(3.0)));
        assert!(!set.contains(&Value::Float(3.5)));
    }

    #[test]
    fn eq_and_hash_consistent_for_signed_zero() {
        use std::collections::HashSet;
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        let mut set = HashSet::new();
        set.insert(Value::Float(-0.0));
        // eq values must hash equal, or sets/maps would keep both zeros
        assert!(set.contains(&Value::Float(0.0)));
        assert!(set.contains(&Value::Int(0)));
        // NaN never equals anything (including itself), so inserts pile up —
        // but canonical hashing keeps different NaN payloads in one bucket.
        assert_ne!(Value::Float(f64::NAN), Value::Float(f64::NAN));
    }

    #[test]
    fn total_cmp_places_nulls_last() {
        let mut vals = [Value::Null, Value::Int(2), Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals[0], Value::Int(1));
        assert_eq!(vals[1], Value::Int(2));
        assert!(vals[2].is_null());
    }

    #[test]
    fn total_cmp_is_a_total_order() {
        // A pool covering every variant, NaN, signed zero, values near the
        // i64/f64 precision boundary, and strings that look like dates.
        let pool = vec![
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(i64::MIN),
            Value::Int(-1),
            Value::Int(0),
            Value::Int(3),
            Value::Int(i64::MAX - 1),
            Value::Int(i64::MAX),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(-0.0),
            Value::Float(0.0),
            Value::Float(2.5),
            Value::Float(3.0),
            Value::Float(9.223372036854776e18), // 2^63, rounds from i64::MAX
            Value::Float(f64::INFINITY),
            Value::Float(f64::NAN),
            Value::str(""),
            Value::str("1000-01-01"),
            Value::str("2999-01-01"),
            Value::str("abc"),
            Value::Date(Date::new(1000, 1, 1).unwrap()),
            Value::Date(Date::new(2999, 1, 1).unwrap()),
        ];
        for a in &pool {
            assert_eq!(a.total_cmp(a), Ordering::Equal, "{a} != itself");
            for b in &pool {
                // antisymmetry
                assert_eq!(a.total_cmp(b), b.total_cmp(a).reverse(), "{a} vs {b}");
                for c in &pool {
                    // transitivity: a <= b <= c implies a <= c
                    if a.total_cmp(b) != Ordering::Greater && b.total_cmp(c) != Ordering::Greater {
                        assert_ne!(
                            a.total_cmp(c),
                            Ordering::Greater,
                            "cycle: {a} <= {b} <= {c} but {a} > {c}"
                        );
                    }
                }
            }
        }
        // Sorting never panics and places the families in rank order.
        let mut sorted = pool.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        assert!(sorted.last().unwrap().is_null());
    }

    #[test]
    fn mixed_numeric_comparison_is_exact_near_i64_max() {
        // i64::MAX as f64 rounds up to 2^63; the comparison must not.
        let two_63 = Value::Float(9.223372036854776e18);
        assert_eq!(Value::Int(i64::MAX).total_cmp(&two_63), Ordering::Less);
        assert_eq!(Value::Int(i64::MAX).sql_cmp(&two_63), Some(Ordering::Less));
        assert_eq!(
            Value::Float(f64::INFINITY).total_cmp(&Value::Int(i64::MAX)),
            Ordering::Greater
        );
        assert_eq!(
            Value::Int(i64::MIN).total_cmp(&Value::Float(-9.3e18)),
            Ordering::Greater
        );
        assert_eq!(Value::Int(3).total_cmp(&Value::Float(3.0)), Ordering::Equal);
        assert_eq!(Value::Int(3).total_cmp(&Value::Float(3.5)), Ordering::Less);
        assert_eq!(
            Value::Int(4).total_cmp(&Value::Float(3.5)),
            Ordering::Greater
        );
        assert_eq!(
            Value::Int(-3).total_cmp(&Value::Float(-3.5)),
            Ordering::Greater
        );
        // NaN stays inside the numeric rank: after every number, before
        // Str/Date/NULL.
        assert_eq!(
            Value::Float(f64::NAN).total_cmp(&Value::Int(i64::MAX)),
            Ordering::Greater
        );
        assert_eq!(
            Value::Float(f64::NAN).total_cmp(&Value::str("")),
            Ordering::Less
        );
        // SQL comparison with NaN stays unknown.
        assert_eq!(Value::Int(1).sql_cmp(&Value::Float(f64::NAN)), None);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(
            Value::Int(2).mul(&Value::Float(1.5)).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(Value::Int(7).sub(&Value::Int(9)).unwrap(), Value::Int(-2));
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        assert_eq!(
            Value::Int(7).div(&Value::Int(2)).unwrap(),
            Value::Float(3.5)
        );
        assert!(Value::Null.add(&Value::Int(1)).unwrap().is_null());
        assert!(Value::Int(i64::MAX).add(&Value::Int(1)).is_err());
    }

    #[test]
    fn casts() {
        assert_eq!(
            Value::str("2016-07-04").cast(DataType::Date).unwrap(),
            Value::Date(Date::new(2016, 7, 4).unwrap())
        );
        assert_eq!(
            Value::Int(3).cast(DataType::Float).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            Value::str("42").cast(DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert!(Value::str("xyz").cast(DataType::Int).is_err());
        assert!(Value::Bool(true).cast(DataType::Date).is_err());
        assert!(Value::Null.cast(DataType::Int).unwrap().is_null());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int().unwrap(), 5);
        assert_eq!(Value::Float(5.0).as_int().unwrap(), 5);
        assert!(Value::Float(5.5).as_int().is_err());
        assert_eq!(Value::str("hi").as_str().unwrap(), "hi");
        assert!(Value::Int(1).as_str().is_err());
        assert!(Value::Bool(true).as_bool().unwrap());
        assert_eq!(
            Value::str("2017-01-01").as_date().unwrap(),
            Date::new(2017, 1, 1).unwrap()
        );
    }

    #[test]
    fn display_and_render() {
        assert_eq!(Value::str("a").to_string(), "'a'");
        assert_eq!(Value::str("a").render(), "a");
        assert_eq!(Value::Int(1).to_string(), "1");
        assert_eq!(Value::Null.render(), "NULL");
    }
}
