//! Pull-based row streams: the pipelined execution model shared by both
//! engines.
//!
//! A [`RowStream`] is a lazy, fallible iterator over [`RowRef`]s.  Operators
//! implement it by pulling from their input stream on demand, so *demand*
//! propagates down the operator tree: when a consumer stops pulling (a
//! `LIMIT` is satisfied, an error aborts the query), every upstream operator
//! — including the base-table scan — stops producing.  This is what turns
//! the limit hint of the batch executors into genuine early termination: a
//! `LIMIT 10` under a filter reads base rows only until ten survivors have
//! been found, instead of scanning and buffering the whole table.
//!
//! The trait is deliberately tiny (`next()` only).  This module also
//! carries the generic adapters: `FilterStream` and `DedupeStream` back
//! the bounded executor's fetch pipeline, while `VecStream` / `MapStream`
//! / `TakeStream` round out the combinator set for library consumers (the
//! engine's operators implement `RowStream` directly because each carries
//! its own metrics counters):
//!
//! * [`VecStream`] — a stream over already-materialized rows (the boundary
//!   between a blocking operator, e.g. sort or aggregation, and the pipeline
//!   downstream of it);
//! * [`FilterStream`] — retain rows satisfying a fallible predicate,
//!   propagating evaluation errors (SQL type errors must surface, not drop
//!   rows);
//! * [`MapStream`] — transform each row through a fallible function
//!   (projection);
//! * [`DedupeStream`] — incremental duplicate elimination preserving
//!   first-occurrence order (set semantics, hashing the `RowRef`s
//!   themselves, so nothing is cloned);
//! * [`TakeStream`] — yield at most `k` rows, then stop pulling.
//!
//! Engine-specific operators (scans with metrics, joins, top-k sorts, the
//! bounded `fetch`) implement [`RowStream`] directly in their own crates.

use crate::error::Result;
use crate::rowref::RowRef;
use std::collections::HashSet;

/// A lazy, fallible stream of [`RowRef`]s — the pipelined operator
/// interface.
///
/// `next()` returns `Ok(Some(row))` while rows remain, `Ok(None)` at
/// exhaustion, and `Err(_)` when producing the next row fails (the error
/// aborts the pipeline; a stream need not be pollable after an error).
pub trait RowStream<'a> {
    /// Pull the next row.
    fn next(&mut self) -> Result<Option<RowRef<'a>>>;

    /// Drain the stream into a vector (the materialization boundary).
    fn collect_rows(&mut self) -> Result<Vec<RowRef<'a>>>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        while let Some(row) = self.next()? {
            out.push(row);
        }
        Ok(out)
    }
}

impl<'a, S: RowStream<'a> + ?Sized> RowStream<'a> for Box<S> {
    fn next(&mut self) -> Result<Option<RowRef<'a>>> {
        (**self).next()
    }
}

/// A stream over rows that are already materialized.
#[derive(Debug)]
pub struct VecStream<'a> {
    iter: std::vec::IntoIter<RowRef<'a>>,
}

impl<'a> VecStream<'a> {
    /// Stream the rows of `rows` in order.
    pub fn new(rows: Vec<RowRef<'a>>) -> Self {
        VecStream {
            iter: rows.into_iter(),
        }
    }
}

impl<'a> RowStream<'a> for VecStream<'a> {
    fn next(&mut self) -> Result<Option<RowRef<'a>>> {
        Ok(self.iter.next())
    }
}

/// Retain the rows for which `pred` returns `Ok(true)`; errors propagate.
pub struct FilterStream<'a, S, F>
where
    S: RowStream<'a>,
    F: FnMut(&RowRef<'a>) -> Result<bool>,
{
    input: S,
    pred: F,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl<'a, S, F> FilterStream<'a, S, F>
where
    S: RowStream<'a>,
    F: FnMut(&RowRef<'a>) -> Result<bool>,
{
    /// Filter `input` through `pred`.
    pub fn new(input: S, pred: F) -> Self {
        FilterStream {
            input,
            pred,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<'a, S, F> RowStream<'a> for FilterStream<'a, S, F>
where
    S: RowStream<'a>,
    F: FnMut(&RowRef<'a>) -> Result<bool>,
{
    fn next(&mut self) -> Result<Option<RowRef<'a>>> {
        while let Some(row) = self.input.next()? {
            if (self.pred)(&row)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

/// Transform every row through a fallible function.
pub struct MapStream<'a, S, F>
where
    S: RowStream<'a>,
    F: FnMut(RowRef<'a>) -> Result<RowRef<'a>>,
{
    input: S,
    f: F,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl<'a, S, F> MapStream<'a, S, F>
where
    S: RowStream<'a>,
    F: FnMut(RowRef<'a>) -> Result<RowRef<'a>>,
{
    /// Map `input` through `f`.
    pub fn new(input: S, f: F) -> Self {
        MapStream {
            input,
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<'a, S, F> RowStream<'a> for MapStream<'a, S, F>
where
    S: RowStream<'a>,
    F: FnMut(RowRef<'a>) -> Result<RowRef<'a>>,
{
    fn next(&mut self) -> Result<Option<RowRef<'a>>> {
        match self.input.next()? {
            Some(row) => Ok(Some((self.f)(row)?)),
            None => Ok(None),
        }
    }
}

/// Incremental duplicate elimination preserving first-occurrence order.
///
/// Hashing the [`RowRef`]s keeps duplicate elimination clone-free: a
/// retained row's segment list moves into the `seen` set and a cheap clone
/// (pointer copies) is emitted downstream.
pub struct DedupeStream<'a, S: RowStream<'a>> {
    input: S,
    seen: HashSet<RowRef<'a>>,
}

impl<'a, S: RowStream<'a>> DedupeStream<'a, S> {
    /// Deduplicate `input`.
    pub fn new(input: S) -> Self {
        DedupeStream {
            input,
            seen: HashSet::new(),
        }
    }
}

impl<'a, S: RowStream<'a>> RowStream<'a> for DedupeStream<'a, S> {
    fn next(&mut self) -> Result<Option<RowRef<'a>>> {
        while let Some(row) = self.input.next()? {
            if self.seen.insert(row.clone()) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

/// Yield at most `k` rows, then stop pulling from the input entirely.
pub struct TakeStream<'a, S: RowStream<'a>> {
    input: S,
    remaining: usize,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl<'a, S: RowStream<'a>> TakeStream<'a, S> {
    /// Cap `input` at `k` rows.
    pub fn new(input: S, k: usize) -> Self {
        TakeStream {
            input,
            remaining: k,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<'a, S: RowStream<'a>> RowStream<'a> for TakeStream<'a, S> {
    fn next(&mut self) -> Result<Option<RowRef<'a>>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next()? {
            Some(row) => {
                self.remaining -= 1;
                Ok(Some(row))
            }
            None => {
                self.remaining = 0;
                Ok(None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::BeasError;
    use crate::value::Value;

    fn row(x: i64) -> RowRef<'static> {
        RowRef::owned(vec![Value::Int(x)])
    }

    fn ints(rows: &[RowRef<'_>]) -> Vec<i64> {
        rows.iter()
            .map(|r| match r.get(0) {
                Some(Value::Int(i)) => *i,
                other => panic!("unexpected value {other:?}"),
            })
            .collect()
    }

    #[test]
    fn vec_stream_yields_in_order() {
        let mut s = VecStream::new(vec![row(1), row(2), row(3)]);
        let out = s.collect_rows().unwrap();
        assert_eq!(ints(&out), vec![1, 2, 3]);
        assert!(s.next().unwrap().is_none());
    }

    #[test]
    fn filter_stream_keeps_matches_and_propagates_errors() {
        let s = VecStream::new(vec![row(1), row(2), row(3), row(4)]);
        let mut f = FilterStream::new(s, |r| {
            Ok(matches!(r.get(0), Some(Value::Int(i)) if i % 2 == 0))
        });
        assert_eq!(ints(&f.collect_rows().unwrap()), vec![2, 4]);

        let s = VecStream::new(vec![row(1)]);
        let mut f = FilterStream::new(s, |_| -> Result<bool> { Err(BeasError::execution("boom")) });
        assert!(f.next().is_err());
    }

    #[test]
    fn map_stream_transforms_rows() {
        let s = VecStream::new(vec![row(1), row(2)]);
        let mut m = MapStream::new(s, |r| {
            let v = match r.get(0) {
                Some(Value::Int(i)) => *i * 10,
                _ => unreachable!(),
            };
            Ok(RowRef::owned(vec![Value::Int(v)]))
        });
        assert_eq!(ints(&m.collect_rows().unwrap()), vec![10, 20]);
    }

    #[test]
    fn dedupe_stream_is_incremental_and_order_preserving() {
        let s = VecStream::new(vec![row(1), row(2), row(1), row(3), row(2)]);
        let mut d = DedupeStream::new(s);
        assert_eq!(ints(&d.collect_rows().unwrap()), vec![1, 2, 3]);
    }

    #[test]
    fn take_stream_stops_pulling_at_k() {
        // A stream that panics past position 2 proves take(2) never
        // over-pulls.
        struct Fused {
            at: usize,
        }
        impl<'a> RowStream<'a> for Fused {
            fn next(&mut self) -> Result<Option<RowRef<'a>>> {
                self.at += 1;
                assert!(self.at <= 2, "pulled past the take cap");
                Ok(Some(RowRef::owned(vec![Value::Int(self.at as i64)])))
            }
        }
        let mut t = TakeStream::new(Fused { at: 0 }, 2);
        assert_eq!(ints(&t.collect_rows().unwrap()), vec![1, 2]);
        assert!(t.next().unwrap().is_none());

        // take(0) never pulls at all
        let mut t0 = TakeStream::new(Fused { at: 10 }, 0);
        assert!(t0.next().unwrap().is_none());
    }

    #[test]
    fn boxed_streams_are_streams() {
        let mut s: Box<dyn RowStream<'static>> = Box::new(VecStream::new(vec![row(7)]));
        assert_eq!(ints(&[s.next().unwrap().unwrap()]), vec![7]);
        assert!(s.next().unwrap().is_none());
    }
}
