//! Crate-wide error type shared by every layer of the BEAS workspace.

use std::fmt;

/// Convenient result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, BeasError>;

/// The single error type used by all BEAS crates.
///
/// Variants are grouped by the layer that typically produces them; keeping a
/// single enum avoids a web of `From` conversions across the workspace while
/// still letting callers match on the failure class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BeasError {
    /// Lexical or syntactic error while parsing SQL text.
    Parse(String),
    /// Name-resolution error (unknown table/column, ambiguous reference, ...).
    Binding(String),
    /// Type error during expression analysis or evaluation.
    Type(String),
    /// Catalog-level error (duplicate table, missing table, schema mismatch).
    Catalog(String),
    /// Storage-level error (row arity mismatch, index corruption, ...).
    Storage(String),
    /// The data does not conform to an access constraint.
    Conformance(String),
    /// Planning error in either the baseline engine or the bounded planner.
    Plan(String),
    /// Runtime error while executing a physical plan.
    Execution(String),
    /// The query is not boundedly evaluable under the given access schema.
    NotBounded(String),
    /// The deduced bound exceeds the user-supplied data-access budget.
    BudgetExceeded {
        /// Bound on tuples the plan would access.
        required: u64,
        /// Budget the user allowed.
        budget: u64,
    },
    /// An in-flight query exceeded its session resource quota (tuples
    /// accessed, answer rows, or wall-clock deadline) and was cancelled
    /// cooperatively.
    QuotaExceeded {
        /// Which resource tripped: `"tuples"`, `"rows"`, `"deadline_ms"`,
        /// or `"cancelled"` (externally cancelled via
        /// `QuotaTracker::cancel`).
        resource: &'static str,
        /// Amount consumed when the trip was observed.
        used: u64,
        /// The quota's limit for that resource.
        limit: u64,
    },
    /// A feature of SQL that the engine does not support.
    Unsupported(String),
    /// Invalid argument supplied to a public API.
    InvalidArgument(String),
}

impl BeasError {
    /// Short machine-readable category name, useful in logs and test assertions.
    pub fn kind(&self) -> &'static str {
        match self {
            BeasError::Parse(_) => "parse",
            BeasError::Binding(_) => "binding",
            BeasError::Type(_) => "type",
            BeasError::Catalog(_) => "catalog",
            BeasError::Storage(_) => "storage",
            BeasError::Conformance(_) => "conformance",
            BeasError::Plan(_) => "plan",
            BeasError::Execution(_) => "execution",
            BeasError::NotBounded(_) => "not_bounded",
            BeasError::BudgetExceeded { .. } => "budget_exceeded",
            BeasError::QuotaExceeded { .. } => "quota_exceeded",
            BeasError::Unsupported(_) => "unsupported",
            BeasError::InvalidArgument(_) => "invalid_argument",
        }
    }

    /// Helper for building a parse error.
    pub fn parse(msg: impl Into<String>) -> Self {
        BeasError::Parse(msg.into())
    }

    /// Helper for building a binding error.
    pub fn binding(msg: impl Into<String>) -> Self {
        BeasError::Binding(msg.into())
    }

    /// Helper for building a type error.
    pub fn type_err(msg: impl Into<String>) -> Self {
        BeasError::Type(msg.into())
    }

    /// Helper for building a catalog error.
    pub fn catalog(msg: impl Into<String>) -> Self {
        BeasError::Catalog(msg.into())
    }

    /// Helper for building a storage error.
    pub fn storage(msg: impl Into<String>) -> Self {
        BeasError::Storage(msg.into())
    }

    /// Helper for building a conformance error.
    pub fn conformance(msg: impl Into<String>) -> Self {
        BeasError::Conformance(msg.into())
    }

    /// Helper for building a planning error.
    pub fn plan(msg: impl Into<String>) -> Self {
        BeasError::Plan(msg.into())
    }

    /// Helper for building an execution error.
    pub fn execution(msg: impl Into<String>) -> Self {
        BeasError::Execution(msg.into())
    }

    /// Helper for building a not-bounded error.
    pub fn not_bounded(msg: impl Into<String>) -> Self {
        BeasError::NotBounded(msg.into())
    }

    /// Helper for building an unsupported-feature error.
    pub fn unsupported(msg: impl Into<String>) -> Self {
        BeasError::Unsupported(msg.into())
    }

    /// Helper for building an invalid-argument error.
    pub fn invalid_argument(msg: impl Into<String>) -> Self {
        BeasError::InvalidArgument(msg.into())
    }
}

impl fmt::Display for BeasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BeasError::Parse(m) => write!(f, "parse error: {m}"),
            BeasError::Binding(m) => write!(f, "binding error: {m}"),
            BeasError::Type(m) => write!(f, "type error: {m}"),
            BeasError::Catalog(m) => write!(f, "catalog error: {m}"),
            BeasError::Storage(m) => write!(f, "storage error: {m}"),
            BeasError::Conformance(m) => write!(f, "access-constraint conformance error: {m}"),
            BeasError::Plan(m) => write!(f, "planning error: {m}"),
            BeasError::Execution(m) => write!(f, "execution error: {m}"),
            BeasError::NotBounded(m) => write!(f, "query is not boundedly evaluable: {m}"),
            BeasError::BudgetExceeded { required, budget } => write!(
                f,
                "data-access budget exceeded: plan needs up to {required} tuples, budget is {budget}"
            ),
            BeasError::QuotaExceeded {
                resource,
                used,
                limit,
            } => write!(
                f,
                "session quota exceeded: {resource} used {used}, quota allows {limit}"
            ),
            BeasError::Unsupported(m) => write!(f, "unsupported SQL feature: {m}"),
            BeasError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for BeasError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = BeasError::parse("unexpected token `FROM`");
        assert!(e.to_string().contains("unexpected token"));
        assert_eq!(e.kind(), "parse");
    }

    #[test]
    fn budget_exceeded_formats_numbers() {
        let e = BeasError::BudgetExceeded {
            required: 12_000_000,
            budget: 1000,
        };
        let s = e.to_string();
        assert!(s.contains("12000000"));
        assert!(s.contains("1000"));
        assert_eq!(e.kind(), "budget_exceeded");
    }

    #[test]
    fn kinds_are_distinct() {
        let errs = vec![
            BeasError::parse("x"),
            BeasError::binding("x"),
            BeasError::type_err("x"),
            BeasError::catalog("x"),
            BeasError::storage("x"),
            BeasError::conformance("x"),
            BeasError::plan("x"),
            BeasError::execution("x"),
            BeasError::not_bounded("x"),
            BeasError::QuotaExceeded {
                resource: "tuples",
                used: 2,
                limit: 1,
            },
            BeasError::unsupported("x"),
            BeasError::invalid_argument("x"),
        ];
        let kinds: std::collections::HashSet<_> = errs.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), errs.len());
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&BeasError::execution("boom"));
    }
}
