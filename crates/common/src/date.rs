//! A small calendar-date type.
//!
//! The TLC benchmark (call-detail-record analysis) keys several access
//! constraints on a `date` attribute, e.g. `call({pnum, date} -> {recnum,
//! region}, 500)`.  We implement a tiny proleptic-Gregorian date rather than
//! pull in a calendar crate: only construction, validation, ordering, day
//! arithmetic and parsing/formatting of `YYYY-MM-DD` are needed.

use crate::error::{BeasError, Result};
use std::fmt;
use std::str::FromStr;

/// A calendar date (proleptic Gregorian), stored as year/month/day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    year: i32,
    month: u8,
    day: u8,
}

const DAYS_IN_MONTH: [u8; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u8) -> u8 {
    if month == 2 && is_leap(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize]
    }
}

impl Date {
    /// Create a new date, validating month and day ranges.
    pub fn new(year: i32, month: u8, day: u8) -> Result<Self> {
        if !(1..=12).contains(&month) {
            return Err(BeasError::invalid_argument(format!(
                "month out of range: {month}"
            )));
        }
        if day == 0 || day > days_in_month(year, month) {
            return Err(BeasError::invalid_argument(format!(
                "day out of range for {year}-{month:02}: {day}"
            )));
        }
        Ok(Date { year, month, day })
    }

    /// Year component.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// Month component (1-12).
    pub fn month(&self) -> u8 {
        self.month
    }

    /// Day-of-month component (1-31).
    pub fn day(&self) -> u8 {
        self.day
    }

    /// Number of days since 1970-01-01 (negative before the epoch).  Only
    /// used for ordering and day arithmetic.
    pub fn to_ordinal(&self) -> i64 {
        // Algorithm adapted from Howard Hinnant's `days_from_civil`.
        let y = if self.month <= 2 {
            self.year - 1
        } else {
            self.year
        } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let m = self.month as i64;
        let d = self.day as i64;
        let doy = (153 * (m + if m > 2 { -3 } else { 9 }) + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }

    /// Construct a date from the ordinal produced by [`Date::to_ordinal`].
    pub fn from_ordinal(z: i64) -> Self {
        let z = z + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
        let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u8;
        let year = (y + if m <= 2 { 1 } else { 0 }) as i32;
        Date {
            year,
            month: m,
            day: d,
        }
    }

    /// Add (or subtract, for negative `days`) a number of days.
    pub fn add_days(&self, days: i64) -> Self {
        Date::from_ordinal(self.to_ordinal() + days)
    }

    /// Signed number of days from `other` to `self`.
    pub fn days_since(&self, other: &Date) -> i64 {
        self.to_ordinal() - other.to_ordinal()
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl FromStr for Date {
    type Err = BeasError;

    /// Strict `YYYY-MM-DD` only: exactly 4-2-2 ASCII digits separated by `-`,
    /// no signs, padding, surrounding whitespace or trailing garbage.
    fn from_str(s: &str) -> Result<Self> {
        let bytes = s.as_bytes();
        let well_formed = bytes.len() == 10
            && bytes[4] == b'-'
            && bytes[7] == b'-'
            && bytes
                .iter()
                .enumerate()
                .all(|(i, b)| i == 4 || i == 7 || b.is_ascii_digit());
        if !well_formed {
            return Err(BeasError::parse(format!(
                "invalid date literal (expected YYYY-MM-DD): {s:?}"
            )));
        }
        let digits = |range: std::ops::Range<usize>| -> i32 {
            s[range].bytes().fold(0, |n, b| n * 10 + (b - b'0') as i32)
        };
        Date::new(digits(0..4), digits(5..7) as u8, digits(8..10) as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_display() {
        let d = Date::new(2016, 7, 4).unwrap();
        assert_eq!(d.to_string(), "2016-07-04");
        assert_eq!(d.year(), 2016);
        assert_eq!(d.month(), 7);
        assert_eq!(d.day(), 4);
    }

    #[test]
    fn rejects_invalid_dates() {
        assert!(Date::new(2016, 13, 1).is_err());
        assert!(Date::new(2016, 0, 1).is_err());
        assert!(Date::new(2016, 2, 30).is_err());
        assert!(Date::new(2015, 2, 29).is_err());
        assert!(Date::new(2016, 2, 29).is_ok()); // leap year
        assert!(Date::new(2000, 2, 29).is_ok()); // 400-divisible leap year
        assert!(Date::new(1900, 2, 29).is_err()); // 100-divisible non-leap
    }

    #[test]
    fn parse_round_trip() {
        let d: Date = "2016-01-31".parse().unwrap();
        assert_eq!(d, Date::new(2016, 1, 31).unwrap());
        assert_eq!(d.to_string().parse::<Date>().unwrap(), d);
        assert!("2016/01/31".parse::<Date>().is_err());
        assert!("2016-1".parse::<Date>().is_err());
        assert!("abcd-ef-gh".parse::<Date>().is_err());
    }

    #[test]
    fn parse_is_strict_yyyy_mm_dd() {
        // Unpadded fields used to be accepted; they must not be.
        assert!("2024-2-3".parse::<Date>().is_err());
        assert!("2024-02-3".parse::<Date>().is_err());
        assert!("24-02-03".parse::<Date>().is_err());
        // Signs, whitespace and trailing garbage are rejected.
        assert!("+2024-02-03".parse::<Date>().is_err());
        assert!("2024-+2-03".parse::<Date>().is_err());
        assert!(" 2024-02-03".parse::<Date>().is_err());
        assert!("2024-02-03 ".parse::<Date>().is_err());
        assert!("2024-02-03x".parse::<Date>().is_err());
        assert!("2024-02-033".parse::<Date>().is_err());
        assert!("".parse::<Date>().is_err());
        // The canonical form still parses, including on boundaries.
        assert_eq!(
            "2024-02-29".parse::<Date>().unwrap(),
            Date::new(2024, 2, 29).unwrap()
        );
        assert_eq!(
            "0001-01-01".parse::<Date>().unwrap(),
            Date::new(1, 1, 1).unwrap()
        );
    }

    #[test]
    fn leap_year_day_arithmetic() {
        // Crossing Feb 29 in a leap year…
        let d = Date::new(2024, 2, 28).unwrap();
        assert_eq!(d.add_days(1), Date::new(2024, 2, 29).unwrap());
        assert_eq!(d.add_days(2), Date::new(2024, 3, 1).unwrap());
        // …and from Feb 29 itself, forwards and backwards.
        let leap = Date::new(2024, 2, 29).unwrap();
        assert_eq!(leap.add_days(1), Date::new(2024, 3, 1).unwrap());
        assert_eq!(leap.add_days(-1), Date::new(2024, 2, 28).unwrap());
        assert_eq!(leap.add_days(365), Date::new(2025, 2, 28).unwrap());
        assert_eq!(leap.add_days(366), Date::new(2025, 3, 1).unwrap());
        // Century boundaries: 2000 was a leap year, 1900 and 2100 are not.
        let feb28_2000 = Date::new(2000, 2, 28).unwrap();
        assert_eq!(feb28_2000.add_days(1), Date::new(2000, 2, 29).unwrap());
        let feb28_1900 = Date::new(1900, 2, 28).unwrap();
        assert_eq!(feb28_1900.add_days(1), Date::new(1900, 3, 1).unwrap());
        let feb28_2100 = Date::new(2100, 2, 28).unwrap();
        assert_eq!(feb28_2100.add_days(1), Date::new(2100, 3, 1).unwrap());
        // Whole leap cycles: 2024-02-29 ↔ 2028-02-29 is 1461 days.
        assert_eq!(leap.add_days(1461), Date::new(2028, 2, 29).unwrap());
        assert_eq!(Date::new(2028, 2, 29).unwrap().days_since(&leap), 1461);
    }

    #[test]
    fn ordering_follows_calendar() {
        let a = Date::new(2016, 1, 31).unwrap();
        let b = Date::new(2016, 2, 1).unwrap();
        let c = Date::new(2017, 1, 1).unwrap();
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn ordinal_round_trip_and_arithmetic() {
        let d = Date::new(2016, 2, 28).unwrap();
        assert_eq!(Date::from_ordinal(d.to_ordinal()), d);
        assert_eq!(d.add_days(1), Date::new(2016, 2, 29).unwrap());
        assert_eq!(d.add_days(2), Date::new(2016, 3, 1).unwrap());
        assert_eq!(d.add_days(366), Date::new(2017, 2, 28).unwrap());
        assert_eq!(d.add_days(2).days_since(&d), 2);
        assert_eq!(d.days_since(&d.add_days(2)), -2);
    }

    #[test]
    fn epoch_sanity() {
        // 1970-01-01 is ordinal 0 with the Unix-style epoch used here.
        let epoch = Date::new(1970, 1, 1).unwrap();
        assert_eq!(epoch.to_ordinal(), 0);
        assert_eq!(Date::from_ordinal(0), epoch);
    }
}
