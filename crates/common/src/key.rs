//! Canonical equality-key normalization shared by every keyed path.
//!
//! Three different code paths hash or compare rows on equality keys: the
//! baseline hash join, the baseline nested-loop join, and the bounded
//! executor's `fetch` pipeline (via the constraint indices).  Historically
//! each used a slightly different notion of equality — the hash join used
//! structural [`Value`] map-key equality while the nested-loop join used the
//! coercing [`Value::sql_cmp`], so a `'2016-07-04'` string key would join a
//! `DATE` column under one algorithm but not the other.  This module is the
//! single place where key equality is defined; all three paths normalize
//! through it, so they agree by construction.
//!
//! Normalization rules (applied per key value):
//!
//! * strings that parse as strict `YYYY-MM-DD` dates become [`Value::Date`]
//!   (date literals are written as strings in SQL, and the parse is
//!   canonical: each date has exactly one string form, so two strings are
//!   lexically equal iff their normalized forms are equal);
//! * `-0.0` becomes `0.0` (they compare equal, so they must also hash equal);
//! * integral floats within `i64` range become [`Value::Int`] so the numeric
//!   family hashes uniformly (`Value`'s own `Eq`/`Hash` already treat
//!   `Int(3)` and `Float(3.0)` as the same key — this keeps the invariant
//!   visible and cheap);
//! * everything else is kept as-is.
//!
//! [`joinable`] additionally defines which values participate in equi-joins
//! at all: SQL `NULL` never equals anything (not even itself), and `NaN`
//! compares as *unknown* under [`Value::sql_cmp`], so neither produces join
//! matches on any path.

use crate::value::Value;

/// Exclusive upper bound of the `f64` values that round-trip through `i64`
/// truncation: `2^63` is exactly representable, `i64::MAX` is not.
const TWO_63: f64 = 9_223_372_036_854_775_808.0;

/// Cheap structural pre-filter for `YYYY-MM-DD`: exactly the strings that
/// could parse as a strict date, so non-date strings (the common case for
/// key values) skip the parse attempt entirely.
fn has_date_shape(s: &str) -> bool {
    let b = s.as_bytes();
    b.len() == 10
        && b[4] == b'-'
        && b[7] == b'-'
        && b.iter()
            .enumerate()
            .all(|(i, c)| i == 4 || i == 7 || c.is_ascii_digit())
}

/// Whether a value is already in canonical key form, i.e.
/// [`canonical_key_value`] would return it unchanged.  Lets hot lookup paths
/// skip key reconstruction for the common all-canonical case.
pub fn is_canonical_key_value(v: &Value) -> bool {
    match v {
        Value::Str(s) => !has_date_shape(s),
        Value::Float(f) => !(*f == 0.0 || (f.fract() == 0.0 && *f >= -TWO_63 && *f < TWO_63)),
        _ => true,
    }
}

/// Normalize one key value to its canonical form for hashing/equality.
///
/// For any two non-NULL, non-NaN values `a` and `b`:
/// `canonical_key_value(a) == canonical_key_value(b)` iff
/// `a.sql_eq(&b) == Some(true)`.  This is the property the join-agreement
/// property tests pin.
pub fn canonical_key_value(v: &Value) -> Value {
    match v {
        Value::Str(s) if has_date_shape(s) => match s.parse::<crate::date::Date>() {
            Ok(d) => Value::Date(d),
            Err(_) => v.clone(),
        },
        Value::Float(f) => {
            if *f == 0.0 {
                // collapses -0.0 into +0.0
                Value::Int(0)
            } else if f.fract() == 0.0 && *f >= -TWO_63 && *f < TWO_63 {
                Value::Int(*f as i64)
            } else {
                v.clone()
            }
        }
        other => other.clone(),
    }
}

/// Whether a value can match anything in an equi-join: NULL and NaN cannot.
pub fn joinable(v: &Value) -> bool {
    match v {
        Value::Null => false,
        Value::Float(f) => !f.is_nan(),
        _ => true,
    }
}

/// Build the canonical join key of `row` over the columns `indices`, or
/// `None` if any key value is unjoinable (NULL / NaN, or out of bounds) —
/// such rows produce no join matches on any path.
pub fn join_key<R: crate::rowref::ValueRow + ?Sized>(
    row: &R,
    indices: &[usize],
) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(indices.len());
    for &i in indices {
        let v = row.value_at(i)?;
        if !joinable(v) {
            return None;
        }
        key.push(canonical_key_value(v));
    }
    Some(key)
}

/// Hash one key value under the canonical normalization, without allocating.
///
/// Returns `None` for unjoinable values (NULL / NaN).  For any two joinable
/// values `a` and `b` with `a.sql_eq(&b) == Some(true)` the hashes are equal:
/// `Value`'s own `Hash` already folds the numeric family (`Int(3)`,
/// `Float(3.0)` and `-0.0` hash alike), so only date-shaped strings need the
/// explicit [`canonical_key_value`] rewrite before hashing.  Uses the
/// fixed-key [`DefaultHasher`](std::collections::hash_map::DefaultHasher) so
/// hashes are deterministic across processes — the vectorized join kernels
/// key their build tables on these u64s directly.
pub fn canonical_hash(v: &Value) -> Option<u64> {
    use std::hash::Hasher as _;
    if !joinable(v) {
        return None;
    }
    let mut h = std::collections::hash_map::DefaultHasher::new();
    hash_canonical_into(v, &mut h);
    Some(h.finish())
}

/// Hash the join key of `row` over the columns `indices`, or `None` if any
/// key value is unjoinable — the zero-allocation counterpart of
/// [`join_key`], for the batched hash kernels: equal [`join_key`]s always
/// produce equal hashes (kernels must still verify candidates value-wise,
/// since distinct keys can collide on 64 bits).
pub fn canonical_key_hash<R: crate::rowref::ValueRow + ?Sized>(
    row: &R,
    indices: &[usize],
) -> Option<u64> {
    use std::hash::Hasher as _;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for &i in indices {
        let v = row.value_at(i)?;
        if !joinable(v) {
            return None;
        }
        hash_canonical_into(v, &mut h);
    }
    Some(h.finish())
}

/// Feed one value into a hasher under canonical-key equality.
fn hash_canonical_into(v: &Value, h: &mut impl std::hash::Hasher) {
    use std::hash::Hash as _;
    match v {
        // Date-shaped strings must hash as the Date they normalize to;
        // unparsable date-shaped strings stay strings.
        Value::Str(s) if has_date_shape(s) => match s.parse::<crate::date::Date>() {
            Ok(d) => Value::Date(d).hash(h),
            Err(_) => v.hash(h),
        },
        // Everything else already hashes canonically via Value's Hash.
        other => other.hash(h),
    }
}

/// Canonicalize an index key in place-of: unlike [`join_key`] this keeps NULL
/// (grouping semantics — a constraint index groups rows by key the way
/// DISTINCT does, so NULL keys share a bucket).
pub fn index_key(values: impl IntoIterator<Item = impl std::borrow::Borrow<Value>>) -> Vec<Value> {
    values
        .into_iter()
        .map(|v| canonical_key_value(v.borrow()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Date;

    #[test]
    fn date_strings_normalize_to_dates() {
        let d = Value::Date(Date::new(2016, 7, 4).unwrap());
        assert_eq!(canonical_key_value(&Value::str("2016-07-04")), d);
        assert_eq!(canonical_key_value(&d), d);
        // non-date strings stay strings
        assert_eq!(canonical_key_value(&Value::str("abc")), Value::str("abc"));
    }

    #[test]
    fn numeric_normalization_is_exact() {
        assert_eq!(canonical_key_value(&Value::Float(3.0)), Value::Int(3));
        assert_eq!(canonical_key_value(&Value::Float(-0.0)), Value::Int(0));
        assert_eq!(canonical_key_value(&Value::Float(0.0)), Value::Int(0));
        assert_eq!(canonical_key_value(&Value::Float(3.5)), Value::Float(3.5));
        // 2^63 is not representable as i64 and must stay a float
        let big = Value::Float(9.223372036854776e18);
        assert_eq!(canonical_key_value(&big), big);
        assert_eq!(
            canonical_key_value(&Value::Float(f64::INFINITY)),
            Value::Float(f64::INFINITY)
        );
    }

    #[test]
    fn canonical_matches_sql_eq() {
        let pool = [
            Value::Int(1),
            Value::Int(0),
            Value::Int(i64::MAX),
            Value::Float(1.0),
            Value::Float(-0.0),
            Value::Float(2.5),
            Value::Float(9.223372036854776e18),
            Value::str("2016-07-04"),
            Value::str("abc"),
            Value::Date(Date::new(2016, 7, 4).unwrap()),
            Value::Bool(true),
        ];
        for a in &pool {
            for b in &pool {
                let canon_eq = canonical_key_value(a) == canonical_key_value(b);
                let sql_eq = a.sql_eq(b) == Some(true);
                assert_eq!(canon_eq, sql_eq, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn canonical_detection_matches_canonicalization() {
        let pool = [
            Value::Null,
            Value::Bool(true),
            Value::Int(42),
            Value::Float(2.5),
            Value::Float(3.0),
            Value::Float(-0.0),
            Value::Float(f64::NAN),
            Value::str("bank"),
            Value::str("2016-07-04"),
            Value::str("2016-99-99"), // date-shaped but unparsable
            Value::str("2016-07-4"),  // not date-shaped
            Value::Date(Date::new(2016, 7, 4).unwrap()),
        ];
        for v in &pool {
            if is_canonical_key_value(v) {
                // fast-path values must be fixed points of canonicalization
                // (total_cmp: NaN is a fixed point but never == itself)
                assert_eq!(
                    canonical_key_value(v).total_cmp(v),
                    std::cmp::Ordering::Equal,
                    "{v} not a fixed point"
                );
            }
        }
        assert!(is_canonical_key_value(&Value::str("bank")));
        assert!(!is_canonical_key_value(&Value::str("2016-07-04")));
        assert!(!is_canonical_key_value(&Value::Float(3.0)));
        assert!(is_canonical_key_value(&Value::Float(2.5)));
    }

    #[test]
    fn join_key_rejects_null_and_nan() {
        let row = vec![Value::Int(1), Value::Null, Value::Float(f64::NAN)];
        assert!(join_key(&row, &[0]).is_some());
        assert!(join_key(&row, &[0, 1]).is_none());
        assert!(join_key(&row, &[2]).is_none());
        assert!(!joinable(&Value::Null));
        assert!(!joinable(&Value::Float(f64::NAN)));
        assert!(joinable(&Value::Int(1)));
    }

    #[test]
    fn index_key_keeps_nulls() {
        let key = index_key([Value::Null, Value::str("2016-07-04")]);
        assert!(key[0].is_null());
        assert_eq!(key[1].data_type(), Some(crate::types::DataType::Date));
    }

    #[test]
    fn canonical_hash_agrees_with_canonical_equality() {
        let pool = [
            Value::Null,
            Value::Bool(true),
            Value::Int(1),
            Value::Int(0),
            Value::Int(i64::MAX),
            Value::Float(1.0),
            Value::Float(-0.0),
            Value::Float(0.0),
            Value::Float(2.5),
            Value::Float(f64::NAN),
            Value::Float(9.223372036854776e18),
            Value::str("2016-07-04"),
            Value::str("2016-99-99"), // date-shaped but unparsable
            Value::str("abc"),
            Value::Date(Date::new(2016, 7, 4).unwrap()),
        ];
        for v in &pool {
            assert_eq!(canonical_hash(v).is_none(), !joinable(v), "{v}");
        }
        for a in &pool {
            for b in &pool {
                let (Some(ha), Some(hb)) = (canonical_hash(a), canonical_hash(b)) else {
                    continue;
                };
                if a.sql_eq(b) == Some(true) {
                    assert_eq!(ha, hb, "{a} vs {b}: sql-equal values must hash equal");
                }
            }
        }
        // Deterministic across calls (fixed-key hasher).
        assert_eq!(
            canonical_hash(&Value::str("2016-07-04")),
            canonical_hash(&Value::Date(Date::new(2016, 7, 4).unwrap()))
        );
    }

    #[test]
    fn canonical_key_hash_agrees_with_join_key() {
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Int(3), Value::str("2016-07-04")],
            vec![
                Value::Float(3.0),
                Value::Date(Date::new(2016, 7, 4).unwrap()),
            ],
            vec![Value::Float(-0.0), Value::str("abc")],
            vec![Value::Int(0), Value::str("abc")],
            vec![Value::Null, Value::str("abc")],
            vec![Value::Float(f64::NAN), Value::str("abc")],
        ];
        let idx = [0usize, 1];
        for r in &rows {
            assert_eq!(
                join_key(r.as_slice(), &idx).is_none(),
                canonical_key_hash(r.as_slice(), &idx).is_none(),
                "{r:?}"
            );
        }
        for a in &rows {
            for b in &rows {
                let (Some(ka), Some(kb)) =
                    (join_key(a.as_slice(), &idx), join_key(b.as_slice(), &idx))
                else {
                    continue;
                };
                if ka == kb {
                    assert_eq!(
                        canonical_key_hash(a.as_slice(), &idx),
                        canonical_key_hash(b.as_slice(), &idx),
                        "{a:?} vs {b:?}"
                    );
                }
            }
        }
        // Out-of-bounds column behaves like join_key: no key, no hash.
        assert!(canonical_key_hash(rows[0].as_slice(), &[5]).is_none());
    }
}
