//! Shared, pipelined row representation for the execution cores.
//!
//! Both executors used to materialize `Vec<Vec<Value>>` at every operator:
//! scans copied whole tables, joins cloned every value of both sides into a
//! fresh row, and `DISTINCT` cloned each row a second time into its hash set.
//! The cost of that grows with `|D|` even for queries whose *answers* are
//! tiny — exactly the behaviour bounded evaluation is meant to avoid.
//!
//! A [`RowRef`] is a logical row assembled from *segments* that are either
//! borrowed (`&[Value]` into a base table or a constraint-index bucket) or
//! shared (`Arc<Row>` produced by a projection or a computed key).
//! Operators move `RowRef`s, not values:
//!
//! * a scan yields one single-segment borrowed `RowRef` per table row — no
//!   copy of the table at all;
//! * a join concatenates the two sides by appending segments — O(#segments)
//!   instead of O(row width) per output row, and the underlying values are
//!   never cloned;
//! * `DISTINCT`/`dedupe` hash the `RowRef` itself (its `Hash`/`Eq` iterate
//!   the logical values), so duplicate elimination clones nothing.
//!
//! A row only becomes an owned [`Row`] again at the query boundary
//! ([`RowRef::into_row`] moves sole-owner shared segments instead of
//! cloning them) or when an expression produces new values.  The common
//! single-segment row — every scanned or freshly projected row — stores its
//! segment inline, so building one performs no allocation beyond the values
//! themselves.
//!
//! [`ValueRow`] is the tiny accessor trait that lets the expression
//! evaluator (`beas_sql::evaluate`) read positions from either
//! representation without knowing which one it was handed.

use crate::tuple::Row;
use crate::value::Value;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Positional value access shared by owned rows and [`RowRef`]s.
pub trait ValueRow {
    /// Number of values in the row.
    fn arity(&self) -> usize;
    /// Value at position `i`, if in bounds.
    fn value_at(&self, i: usize) -> Option<&Value>;
}

impl ValueRow for [Value] {
    fn arity(&self) -> usize {
        self.len()
    }
    fn value_at(&self, i: usize) -> Option<&Value> {
        self.get(i)
    }
}

impl<const N: usize> ValueRow for [Value; N] {
    fn arity(&self) -> usize {
        N
    }
    fn value_at(&self, i: usize) -> Option<&Value> {
        self.get(i)
    }
}

impl ValueRow for Vec<Value> {
    fn arity(&self) -> usize {
        self.len()
    }
    fn value_at(&self, i: usize) -> Option<&Value> {
        self.get(i)
    }
}

/// One contiguous piece of a [`RowRef`].
#[derive(Debug, Clone)]
pub enum RowSeg<'a> {
    /// Borrowed from storage (a base table or an index bucket).
    Slice(&'a [Value]),
    /// Computed values shared between the rows that contain them.  The row
    /// is boxed whole so a sole owner can move it back out at the query
    /// boundary ([`RowRef::into_row`]) without cloning the values.
    Shared(Arc<Row>),
}

impl RowSeg<'_> {
    fn values(&self) -> &[Value] {
        match self {
            RowSeg::Slice(s) => s,
            RowSeg::Shared(a) => a,
        }
    }
}

/// A logical row assembled from borrowed/shared segments; cheap to clone.
///
/// The first segment is stored inline: the overwhelmingly common
/// single-segment row (a scanned base row, a projected row) allocates
/// nothing beyond its values — only multi-segment rows (join outputs) touch
/// the spill vector.
#[derive(Debug, Clone, Default)]
pub struct RowRef<'a> {
    head: Option<RowSeg<'a>>,
    tail: Vec<RowSeg<'a>>,
}

impl<'a> RowRef<'a> {
    /// The empty row (arity 0) — the initial bounded-execution context.
    pub fn empty() -> Self {
        RowRef::default()
    }

    /// A row borrowing `values` without copying them.
    pub fn borrowed(values: &'a [Value]) -> Self {
        let mut r = RowRef::empty();
        r.push_slice(values);
        r
    }

    /// A row owning freshly computed `values` (no copy of the values).
    pub fn owned(values: Vec<Value>) -> Self {
        RowRef::shared(Arc::new(values))
    }

    /// A row over an already-shared block of values.
    pub fn shared(values: Arc<Row>) -> Self {
        let mut r = RowRef::empty();
        r.push_shared(values);
        r
    }

    fn push_seg(&mut self, seg: RowSeg<'a>) {
        if self.head.is_none() && self.tail.is_empty() {
            self.head = Some(seg);
        } else {
            self.tail.push(seg);
        }
    }

    /// The segments in logical order.
    fn segs(&self) -> impl Iterator<Item = &RowSeg<'a>> {
        self.head.iter().chain(self.tail.iter())
    }

    /// Append a borrowed segment (no-op for empty slices).
    pub fn push_slice(&mut self, values: &'a [Value]) {
        if !values.is_empty() {
            self.push_seg(RowSeg::Slice(values));
        }
    }

    /// Append a shared segment (no-op for empty blocks).
    pub fn push_shared(&mut self, values: Arc<Row>) {
        if !values.is_empty() {
            self.push_seg(RowSeg::Shared(values));
        }
    }

    /// Concatenate two rows by appending segments — the join primitive.
    pub fn concat(&self, other: &RowRef<'a>) -> RowRef<'a> {
        let mut out = RowRef::empty();
        let total = self.segs().count() + other.segs().count();
        if total > 1 {
            out.tail.reserve(total - 1);
        }
        for seg in self.segs().chain(other.segs()) {
            out.push_seg(seg.clone());
        }
        out
    }

    /// Number of logical values.
    pub fn len(&self) -> usize {
        self.segs().map(|s| s.values().len()).sum()
    }

    /// Whether the row has no values.
    pub fn is_empty(&self) -> bool {
        self.head.is_none()
    }

    /// Value at logical position `i`.
    pub fn get(&self, i: usize) -> Option<&Value> {
        let mut offset = i;
        for seg in self.segs() {
            let vals = seg.values();
            if offset < vals.len() {
                return Some(&vals[offset]);
            }
            offset -= vals.len();
        }
        None
    }

    /// Iterate the logical values left to right.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.segs().flat_map(|s| s.values().iter())
    }

    /// Materialize an owned row without consuming the reference.
    pub fn to_row(&self) -> Row {
        let mut out = Vec::with_capacity(self.len());
        out.extend(self.values().cloned());
        out
    }

    /// Materialize an owned row, consuming the reference — the query
    /// boundary.  A single-segment shared row whose values have no other
    /// owner (the common projected-row case) is moved out without cloning
    /// a single value; everything else copies like [`RowRef::to_row`].
    pub fn into_row(mut self) -> Row {
        if self.tail.is_empty() {
            return match self.head.take() {
                Some(RowSeg::Shared(a)) => Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()),
                Some(RowSeg::Slice(s)) => s.to_vec(),
                None => Vec::new(),
            };
        }
        self.to_row()
    }
}

impl ValueRow for RowRef<'_> {
    fn arity(&self) -> usize {
        self.len()
    }
    fn value_at(&self, i: usize) -> Option<&Value> {
        self.get(i)
    }
}

/// Equality over the logical value sequence, ignoring segmentation — a
/// 2-segment join output equals the equivalent flat row.
impl PartialEq for RowRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.values().zip(other.values()).all(|(a, b)| a == b)
    }
}

impl Eq for RowRef<'_> {}

/// Hash over the logical value sequence (consistent with `PartialEq` above
/// and with how `Vec<Value>` hashes: length prefix then each value).
impl Hash for RowRef<'_> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.len().hash(state);
        for v in self.values() {
            v.hash(state);
        }
    }
}

/// Order-preserving duplicate elimination that never clones an item: kept
/// items move into the output and candidates are compared against them
/// through a hash → indices table.
pub fn dedupe<T: Hash + Eq>(items: impl IntoIterator<Item = T>) -> Vec<T> {
    use std::collections::hash_map::RandomState;
    use std::collections::HashMap;
    use std::hash::BuildHasher;
    let state = RandomState::new();
    let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut out: Vec<T> = Vec::new();
    for item in items {
        let h = state.hash_one(&item);
        let ids = buckets.entry(h).or_default();
        if ids.iter().any(|&i| out[i] == item) {
            continue;
        }
        ids.push(out.len());
        out.push(item);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn vals(xs: &[i64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::Int(x)).collect()
    }

    #[test]
    fn borrowed_rows_index_and_materialize() {
        let base = vals(&[1, 2, 3]);
        let r = RowRef::borrowed(&base);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.get(0), Some(&Value::Int(1)));
        assert_eq!(r.get(2), Some(&Value::Int(3)));
        assert_eq!(r.get(3), None);
        assert_eq!(r.to_row(), base);
    }

    #[test]
    fn concat_spans_segments_without_copying_values() {
        let left = vals(&[1, 2]);
        let right = vals(&[3]);
        let l = RowRef::borrowed(&left);
        let r = RowRef::owned(right.clone());
        let joined = l.concat(&r);
        assert_eq!(joined.len(), 3);
        assert_eq!(joined.get(2), Some(&Value::Int(3)));
        assert_eq!(joined.to_row(), vals(&[1, 2, 3]));
        // the borrowed side still points into `left`
        assert!(std::ptr::eq(joined.get(0).unwrap(), &left[0]));
    }

    #[test]
    fn equality_and_hash_ignore_segmentation() {
        let flat = RowRef::owned(vals(&[1, 2, 3]));
        let a = vals(&[1, 2]);
        let b = vals(&[3]);
        let split = RowRef::borrowed(&a).concat(&RowRef::borrowed(&b));
        assert_eq!(flat, split);
        let mut set = HashSet::new();
        set.insert(flat);
        assert!(set.contains(&split));
        // differing rows are distinct
        assert!(!set.contains(&RowRef::owned(vals(&[1, 2, 4]))));
        assert!(!set.contains(&RowRef::owned(vals(&[1, 2]))));
    }

    #[test]
    fn empty_segments_are_skipped() {
        let mut r = RowRef::empty();
        r.push_slice(&[]);
        r.push_shared(Arc::new(Vec::new()));
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(RowRef::empty(), r);
    }

    #[test]
    fn value_row_access() {
        let base = vals(&[7, 8]);
        let r = RowRef::borrowed(&base);
        assert_eq!(ValueRow::arity(&r), 2);
        assert_eq!(r.value_at(1), Some(&Value::Int(8)));
        assert_eq!(ValueRow::arity(&base), 2);
        assert_eq!(base.value_at(0), Some(&Value::Int(7)));
        assert_eq!(base.as_slice().value_at(2), None);
    }

    #[test]
    fn dedupe_preserves_first_occurrence_order() {
        let rows = vec![vals(&[1]), vals(&[2]), vals(&[1]), vals(&[3]), vals(&[2])];
        let out = dedupe(rows);
        assert_eq!(out, vec![vals(&[1]), vals(&[2]), vals(&[3])]);
        let empty: Vec<Vec<Value>> = Vec::new();
        assert!(dedupe(empty).is_empty());
    }
}
