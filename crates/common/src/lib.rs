#![forbid(unsafe_code)]
//! # beas-common
//!
//! Shared foundation types for the BEAS bounded-evaluation engine:
//! SQL values, data types, dates, relation schemas, tuples (including the
//! *partial tuples* that bounded plans fetch through access-constraint
//! indices), and the crate-wide error type.
//!
//! Everything in this crate is deliberately independent of storage, parsing
//! and planning so that every other crate in the workspace can depend on it
//! without cycles.

pub mod batch;
pub mod date;
pub mod error;
pub mod key;
pub mod morsel;
pub mod quota;
pub mod rowref;
pub mod schema;
pub mod stream;
pub mod tuple;
pub mod types;
pub mod value;

pub use batch::{Column, ColumnBatch, ColumnData, ValueRef, NULL_VALUE};
pub use date::Date;
pub use error::{BeasError, Result};
pub use key::{
    canonical_hash, canonical_key_hash, canonical_key_value, index_key, is_canonical_key_value,
    join_key, joinable,
};
pub use morsel::{
    default_workers, morsel_count, morsel_range, scatter, MorselQueue, ScatterOutcome, MORSEL_ROWS,
};
pub use quota::{QuotaTracker, ResourceQuota};
pub use rowref::{dedupe, RowRef, RowSeg, ValueRow};
pub use schema::{ColumnDef, ColumnRef, Field, Schema, TableSchema};
pub use stream::{DedupeStream, FilterStream, MapStream, RowStream, TakeStream, VecStream};
pub use tuple::{Row, Tuple};
pub use types::DataType;
pub use value::Value;
