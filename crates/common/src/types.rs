//! SQL data types and coercion rules.

use std::fmt;

/// The SQL data types supported by the engine.
///
/// This matches the attribute types used by the TLC telecom benchmark and the
/// SQL fragment BEAS targets (SPJ + aggregates): integers, floats, strings,
/// booleans and dates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Calendar date.
    Date,
}

impl DataType {
    /// Whether values of this type can be compared with `<`, `<=`, `>`, `>=`.
    pub fn is_ordered(&self) -> bool {
        // Every supported type has a total order (strings lexicographic,
        // booleans false < true), so ordered comparisons are always allowed
        // between identical types.
        true
    }

    /// Whether this type participates in arithmetic.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// The common type two operands are coerced to for comparison or
    /// arithmetic, if any.
    pub fn common_type(a: DataType, b: DataType) -> Option<DataType> {
        use DataType::*;
        match (a, b) {
            (x, y) if x == y => Some(x),
            (Int, Float) | (Float, Int) => Some(Float),
            // Dates are frequently written as string literals in SQL text
            // (`date = '2016-07-04'`); comparison coerces the string.
            (Date, Str) | (Str, Date) => Some(Date),
            _ => None,
        }
    }

    /// SQL-ish name used in error messages and `DESCRIBE`-style output.
    pub fn name(&self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "VARCHAR",
            DataType::Bool => "BOOLEAN",
            DataType::Date => "DATE",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_and_ordered() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Str.is_numeric());
        assert!(!DataType::Date.is_numeric());
        assert!(DataType::Date.is_ordered());
        assert!(DataType::Str.is_ordered());
    }

    #[test]
    fn coercion_rules() {
        assert_eq!(
            DataType::common_type(DataType::Int, DataType::Float),
            Some(DataType::Float)
        );
        assert_eq!(
            DataType::common_type(DataType::Float, DataType::Int),
            Some(DataType::Float)
        );
        assert_eq!(
            DataType::common_type(DataType::Str, DataType::Date),
            Some(DataType::Date)
        );
        assert_eq!(
            DataType::common_type(DataType::Int, DataType::Int),
            Some(DataType::Int)
        );
        assert_eq!(DataType::common_type(DataType::Int, DataType::Str), None);
        assert_eq!(DataType::common_type(DataType::Bool, DataType::Int), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(DataType::Int.to_string(), "INT");
        assert_eq!(DataType::Str.to_string(), "VARCHAR");
        assert_eq!(DataType::Date.to_string(), "DATE");
    }
}
