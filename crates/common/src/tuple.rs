//! Tuples (rows) and partial tuples.
//!
//! The central data-reduction idea of BEAS is that bounded plans fetch only
//! the *distinct partial tuples* `D_Y(X = ā)` required by the query, never
//! whole base-table rows.  We therefore keep rows as plain `Vec<Value>` and
//! provide projection helpers that produce partial tuples without copying the
//! source row more than once.

use crate::error::{BeasError, Result};
use crate::value::Value;
use std::fmt;

/// A row of values; the unit of data flowing between physical operators.
pub type Row = Vec<Value>;

/// An owned tuple wrapper with convenience accessors used by tests, examples
/// and the fetch operator.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// The underlying values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume the tuple and return the underlying row.
    pub fn into_row(self) -> Row {
        self.values
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Whether the tuple has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at position `i`, with bounds checking.
    pub fn get(&self, i: usize) -> Result<&Value> {
        self.values.get(i).ok_or_else(|| {
            BeasError::execution(format!(
                "tuple index {i} out of bounds (arity {})",
                self.values.len()
            ))
        })
    }

    /// Project the tuple onto the given column indices, producing a partial
    /// tuple in the order of `indices`.
    pub fn project(&self, indices: &[usize]) -> Result<Tuple> {
        let mut out = Vec::with_capacity(indices.len());
        for &i in indices {
            out.push(self.get(i)?.clone());
        }
        Ok(Tuple::new(out))
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.values.iter().map(|v| v.render()).collect();
        write!(f, "({})", parts.join(", "))
    }
}

/// Project a plain row onto `indices` (helper shared by operators that work
/// with `Row` directly rather than `Tuple`).
pub fn project_row(row: &[Value], indices: &[usize]) -> Row {
    indices.iter().map(|&i| row[i].clone()).collect()
}

/// Render a batch of rows as an aligned text table — used by examples and the
/// performance-analysis reports.
pub fn render_rows(headers: &[String], rows: &[Row]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|v| v.render()).collect())
        .collect();
    for r in &rendered {
        for (i, cell) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_line = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join(" | ")
    };
    out.push_str(&fmt_line(headers, &widths));
    out.push('\n');
    out.push_str(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("-+-"),
    );
    out.push('\n');
    for r in &rendered {
        out.push_str(&fmt_line(r, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_accessors() {
        let t = Tuple::new(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(t.arity(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.get(0).unwrap(), &Value::Int(1));
        assert!(t.get(2).is_err());
        assert_eq!(t.to_string(), "(1, x)");
    }

    #[test]
    fn projection_produces_partial_tuples() {
        let t = Tuple::new(vec![
            Value::str("13800000000"),
            Value::str("13900000001"),
            Value::str("2016-07-04"),
            Value::str("east"),
        ]);
        let p = t.project(&[1, 3]).unwrap();
        assert_eq!(
            p,
            Tuple::new(vec![Value::str("13900000001"), Value::str("east")])
        );
        assert!(t.project(&[9]).is_err());
        // order of indices is respected
        let p2 = t.project(&[3, 1]).unwrap();
        assert_eq!(p2.values()[0], Value::str("east"));
    }

    #[test]
    fn project_row_helper() {
        let row = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        assert_eq!(
            project_row(&row, &[2, 0]),
            vec![Value::Int(3), Value::Int(1)]
        );
    }

    #[test]
    fn render_rows_aligns_columns() {
        let headers = vec!["region".to_string(), "cnt".to_string()];
        let rows = vec![
            vec![Value::str("east"), Value::Int(10)],
            vec![Value::str("northwest"), Value::Int(3)],
        ];
        let s = render_rows(&headers, &rows);
        assert!(s.contains("region"));
        assert!(s.contains("northwest"));
        assert_eq!(s.lines().count(), 4);
    }
}
