//! Morsel-driven work scheduling for parallel query execution.
//!
//! A *morsel* is a fixed-size range of base-table rows — the unit of work a
//! parallel operator hands to its worker threads, following the
//! morsel-driven scheduling of modern in-memory engines.  This module
//! provides the scheduling substrate both engines share; it knows nothing
//! about rows or operators:
//!
//! * [`MORSEL_ROWS`] — the default morsel granularity;
//! * [`morsel_count`] / [`morsel_range`] — split `n` rows into morsels;
//! * [`MorselQueue`] — a lock-free work queue handing out morsel indices
//!   **in ascending order**, with a shared row *quota* for cooperative
//!   `LIMIT` early termination and a stop flag for error aborts;
//! * [`scatter`] — the scoped-thread driver: claim morsels from a queue,
//!   run a worker function per morsel, and return the results **merged in
//!   morsel order**, so the assembled output is deterministic regardless of
//!   thread scheduling (the same positional-merge discipline as the bounded
//!   executor's parallel fetch);
//! * [`default_workers`] — the `available_parallelism`-derived worker count.
//!
//! Ordered hand-out is the property the correctness arguments lean on: at
//! any instant the set of claimed morsels is a *contiguous prefix* of the
//! morsel sequence.  Once the quota counter reports at least `k` surviving
//! rows, the first `k` survivors in row order are guaranteed to lie inside
//! already-claimed morsels, so workers can simply stop claiming and finish
//! what they hold — the merged prefix still contains the exact rows a
//! serial execution would have produced.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Default number of rows per morsel.
///
/// Chosen so a morsel's worth of per-row expression evaluation (~100ns/row)
/// dwarfs the scheduling cost of claiming it (one `fetch_add`), while still
/// splitting medium tables into enough morsels to balance load across a
/// handful of workers.
pub const MORSEL_ROWS: usize = 16_384;

/// Number of morsels needed to cover `rows` rows at `morsel_rows` each.
/// Zero rows need zero morsels.
pub fn morsel_count(rows: usize, morsel_rows: usize) -> usize {
    rows.div_ceil(morsel_rows.max(1))
}

/// The row range of morsel `index` over `rows` rows (the last morsel may be
/// short).
pub fn morsel_range(index: usize, rows: usize, morsel_rows: usize) -> Range<usize> {
    let morsel_rows = morsel_rows.max(1);
    let start = (index * morsel_rows).min(rows);
    let end = ((index + 1) * morsel_rows).min(rows);
    start..end
}

/// Worker count for a parallel stage: `available_parallelism` capped at
/// `cap` (the same pattern as the bounded executor's parallel fetch).
/// Returns 1 — i.e. "stay serial" — when the host reports a single core.
pub fn default_workers(cap: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(cap.max(1))
}

/// A work queue over the morsels `0..morsels`, handing indices out in
/// ascending order.
///
/// Two cooperative shutdown mechanisms ride along:
///
/// * a **quota**: workers report surviving rows through
///   [`MorselQueue::note_rows`]; once the total reaches the quota,
///   [`MorselQueue::claim`] returns `None`.  This is how a streaming
///   `LIMIT k` above a parallel fragment stops the scan — workers finish
///   their in-flight morsel (claimed morsels are always processed to
///   completion, keeping the merged prefix complete) and then stop;
/// * a **stop flag** ([`MorselQueue::stop`]): set on the first evaluation
///   error.  Later morsels cannot contain the first error in row order —
///   claims are ordered, so every earlier morsel is already claimed and
///   will be fully processed — which makes aborting the tail sound.
#[derive(Debug)]
pub struct MorselQueue {
    next: AtomicUsize,
    morsels: usize,
    produced: AtomicUsize,
    quota: usize,
    stopped: AtomicBool,
}

impl MorselQueue {
    /// A queue over `morsels` morsels with no row quota.
    pub fn new(morsels: usize) -> Self {
        MorselQueue::with_quota(morsels, usize::MAX)
    }

    /// A queue over `morsels` morsels that stops handing out work once
    /// `quota` surviving rows have been reported via
    /// [`MorselQueue::note_rows`].
    pub fn with_quota(morsels: usize, quota: usize) -> Self {
        MorselQueue {
            next: AtomicUsize::new(0),
            morsels,
            produced: AtomicUsize::new(0),
            quota,
            stopped: AtomicBool::new(false),
        }
    }

    /// Total number of morsels this queue was created over.
    pub fn morsels(&self) -> usize {
        self.morsels
    }

    /// Claim the next morsel index, or `None` when the queue is exhausted,
    /// stopped, or the quota has been met.  Indices are handed out in
    /// ascending order, so the claimed set is always a contiguous prefix.
    pub fn claim(&self) -> Option<usize> {
        if self.stopped.load(Ordering::Acquire)
            || self.produced.load(Ordering::Acquire) >= self.quota
        {
            return None;
        }
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        if i < self.morsels {
            Some(i)
        } else {
            None
        }
    }

    /// Report `n` surviving rows toward the quota.
    pub fn note_rows(&self, n: usize) {
        if self.quota != usize::MAX && n > 0 {
            self.produced.fetch_add(n, Ordering::AcqRel);
        }
    }

    /// Stop handing out morsels (error abort).  In-flight morsels finish.
    pub fn stop(&self) {
        self.stopped.store(true, Ordering::Release);
    }

    /// Whether [`MorselQueue::stop`] has been called.
    pub fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::Acquire)
    }
}

/// The result of a [`scatter`] run.
#[derive(Debug)]
pub struct ScatterOutcome<T> {
    /// One entry per *processed* morsel, sorted by morsel index — a
    /// contiguous prefix of the morsel sequence (early stop truncates it).
    pub results: Vec<T>,
    /// Morsels processed by each worker, for per-worker scheduling metrics.
    pub morsels_per_worker: Vec<usize>,
}

/// Run `work` over the morsels of `queue` on `workers` scoped threads and
/// return the outputs merged in morsel order.
///
/// The merge is deterministic: each worker tags its outputs with the morsel
/// index it claimed, and the outputs are sorted by that index after the
/// scope joins — identical to a serial left-to-right run over the same
/// morsels, regardless of which worker processed which morsel.  With
/// `workers <= 1` (or a single morsel) no thread is spawned and the queue
/// is drained inline.
pub fn scatter<T, F>(queue: &MorselQueue, workers: usize, work: F) -> ScatterOutcome<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || queue.morsels() <= 1 {
        let mut results = Vec::new();
        while let Some(i) = queue.claim() {
            results.push(work(i));
        }
        return ScatterOutcome {
            morsels_per_worker: vec![results.len()],
            results,
        };
    }
    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let work = &work;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let mut mine = Vec::new();
                    while let Some(i) = queue.claim() {
                        mine.push((i, work(i)));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("morsel worker panicked"))
            .collect()
    });
    let morsels_per_worker: Vec<usize> = per_worker.iter().map(|w| w.len()).collect();
    let mut tagged: Vec<(usize, T)> = per_worker.into_iter().flatten().collect();
    tagged.sort_by_key(|(i, _)| *i);
    ScatterOutcome {
        results: tagged.into_iter().map(|(_, t)| t).collect(),
        morsels_per_worker,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_the_table_exactly_once() {
        for (rows, morsel_rows) in [(0, 10), (1, 10), (10, 10), (11, 10), (95, 16), (100, 1)] {
            let n = morsel_count(rows, morsel_rows);
            let mut covered = 0;
            for i in 0..n {
                let r = morsel_range(i, rows, morsel_rows);
                assert_eq!(r.start, covered, "rows={rows} morsel_rows={morsel_rows}");
                assert!(!r.is_empty());
                assert!(r.len() <= morsel_rows);
                covered = r.end;
            }
            assert_eq!(covered, rows);
            // one-past-the-end morsel is empty, not out of bounds
            assert!(morsel_range(n, rows, morsel_rows).is_empty());
        }
        // degenerate granularity is clamped instead of dividing by zero
        assert_eq!(morsel_count(5, 0), 5);
    }

    #[test]
    fn queue_hands_out_ascending_then_exhausts() {
        let q = MorselQueue::new(3);
        assert_eq!(q.claim(), Some(0));
        assert_eq!(q.claim(), Some(1));
        assert_eq!(q.claim(), Some(2));
        assert_eq!(q.claim(), None);
        assert_eq!(q.claim(), None);
    }

    #[test]
    fn quota_stops_new_claims_but_not_in_flight_work() {
        let q = MorselQueue::with_quota(10, 5);
        assert_eq!(q.claim(), Some(0));
        q.note_rows(3);
        assert_eq!(q.claim(), Some(1)); // quota not met yet
        q.note_rows(2);
        assert_eq!(q.claim(), None); // 5 rows reported: no new morsels
                                     // a quota-free queue ignores note_rows entirely
        let free = MorselQueue::new(2);
        free.note_rows(usize::MAX / 2);
        assert_eq!(free.claim(), Some(0));
    }

    #[test]
    fn stop_aborts_the_queue() {
        let q = MorselQueue::new(10);
        assert_eq!(q.claim(), Some(0));
        assert!(!q.is_stopped());
        q.stop();
        assert!(q.is_stopped());
        assert_eq!(q.claim(), None);
    }

    #[test]
    fn scatter_merges_in_morsel_order() {
        for workers in [1, 2, 4, 8] {
            let q = MorselQueue::new(23);
            let out = scatter(&q, workers, |i| i * 10);
            assert_eq!(out.results, (0..23).map(|i| i * 10).collect::<Vec<_>>());
            let spawned = if workers <= 1 { 1 } else { workers };
            assert_eq!(out.morsels_per_worker.len(), spawned);
            assert_eq!(out.morsels_per_worker.iter().sum::<usize>(), 23);
        }
    }

    #[test]
    fn scatter_with_quota_processes_a_contiguous_prefix() {
        // each morsel "produces" 2 surviving rows; quota 5 needs 3 morsels
        let q = MorselQueue::with_quota(100, 5);
        let out = scatter(&q, 4, |i| {
            q.note_rows(2);
            i
        });
        // the processed set is a contiguous prefix long enough for the quota
        assert_eq!(out.results, (0..out.results.len()).collect::<Vec<_>>());
        assert!(out.results.len() >= 3, "quota needs at least 3 morsels");
        // racing workers may claim a few extra in-flight morsels, never all
        assert!(out.results.len() < 100, "quota failed to stop the queue");
    }

    #[test]
    fn single_morsel_runs_inline() {
        let q = MorselQueue::new(1);
        let out = scatter(&q, 8, |i| i);
        assert_eq!(out.results, vec![0]);
        assert_eq!(out.morsels_per_worker, vec![1]);
    }
}
