//! Bound expressions and their evaluation.
//!
//! A [`BoundExpr`] is an expression whose column references have been
//! resolved to offsets into a row of a known [`beas_common::Schema`].  Both
//! the baseline
//! engine and the bounded plan executor evaluate the same bound expressions,
//! which keeps answer semantics identical between the two paths — an
//! invariant the property tests rely on.

use crate::ast::BinaryOperator;
use beas_common::{BeasError, DataType, Result, Value, ValueRow};
use std::cmp::Ordering;
use std::collections::HashSet;
use std::fmt;

/// An expression bound to a fixed input schema.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Reference to column `i` of the input row.
    Column(usize),
    /// A constant.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOperator,
        /// Left operand.
        left: Box<BoundExpr>,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Logical NOT.
    Not(Box<BoundExpr>),
    /// Numeric negation.
    Negate(Box<BoundExpr>),
    /// `IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Negated?
        negated: bool,
    },
    /// `[NOT] IN (...)` with constant or expression alternatives.
    InList {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// List of alternatives.
        list: Vec<BoundExpr>,
        /// Negated?
        negated: bool,
    },
    /// `[NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Inclusive lower bound.
        low: Box<BoundExpr>,
        /// Inclusive upper bound.
        high: Box<BoundExpr>,
        /// Negated?
        negated: bool,
    },
    /// `[NOT] LIKE pattern`.
    Like {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Pattern expression (usually a literal).
        pattern: Box<BoundExpr>,
        /// Negated?
        negated: bool,
    },
}

impl BoundExpr {
    /// Column indices referenced by this expression.
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            BoundExpr::Column(i) => out.push(*i),
            BoundExpr::Literal(_) => {}
            BoundExpr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            BoundExpr::Not(e) | BoundExpr::Negate(e) => e.collect_columns(out),
            BoundExpr::IsNull { expr, .. } => expr.collect_columns(out),
            BoundExpr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for e in list {
                    e.collect_columns(out);
                }
            }
            BoundExpr::Between {
                expr, low, high, ..
            } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            BoundExpr::Like { expr, pattern, .. } => {
                expr.collect_columns(out);
                pattern.collect_columns(out);
            }
        }
    }

    /// Rewrite column indices through `mapping` (old index -> new index).
    /// Returns `None` if the expression references a column not in `mapping`.
    pub fn remap_columns(
        &self,
        mapping: &std::collections::HashMap<usize, usize>,
    ) -> Option<BoundExpr> {
        Some(match self {
            BoundExpr::Column(i) => BoundExpr::Column(*mapping.get(i)?),
            BoundExpr::Literal(v) => BoundExpr::Literal(v.clone()),
            BoundExpr::Binary { op, left, right } => BoundExpr::Binary {
                op: *op,
                left: Box::new(left.remap_columns(mapping)?),
                right: Box::new(right.remap_columns(mapping)?),
            },
            BoundExpr::Not(e) => BoundExpr::Not(Box::new(e.remap_columns(mapping)?)),
            BoundExpr::Negate(e) => BoundExpr::Negate(Box::new(e.remap_columns(mapping)?)),
            BoundExpr::IsNull { expr, negated } => BoundExpr::IsNull {
                expr: Box::new(expr.remap_columns(mapping)?),
                negated: *negated,
            },
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => BoundExpr::InList {
                expr: Box::new(expr.remap_columns(mapping)?),
                list: list
                    .iter()
                    .map(|e| e.remap_columns(mapping))
                    .collect::<Option<Vec<_>>>()?,
                negated: *negated,
            },
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => BoundExpr::Between {
                expr: Box::new(expr.remap_columns(mapping)?),
                low: Box::new(low.remap_columns(mapping)?),
                high: Box::new(high.remap_columns(mapping)?),
                negated: *negated,
            },
            BoundExpr::Like {
                expr,
                pattern,
                negated,
            } => BoundExpr::Like {
                expr: Box::new(expr.remap_columns(mapping)?),
                pattern: Box::new(pattern.remap_columns(mapping)?),
                negated: *negated,
            },
        })
    }
}

impl fmt::Display for BoundExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundExpr::Column(i) => write!(f, "#{i}"),
            BoundExpr::Literal(v) => write!(f, "{v}"),
            BoundExpr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            BoundExpr::Not(e) => write!(f, "(NOT {e})"),
            BoundExpr::Negate(e) => write!(f, "(-{e})"),
            BoundExpr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                let items: Vec<String> = list.iter().map(|e| e.to_string()).collect();
                write!(
                    f,
                    "({expr} {}IN ({}))",
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            BoundExpr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE {pattern})",
                if *negated { "NOT " } else { "" }
            ),
        }
    }
}

/// Evaluate a bound expression against a row.
///
/// Generic over [`ValueRow`] so both executors can evaluate expressions
/// directly on their pipelined [`beas_common::RowRef`] rows as well as on
/// plain `Vec<Value>` rows, without materializing either.
pub fn evaluate<R: ValueRow + ?Sized>(expr: &BoundExpr, row: &R) -> Result<Value> {
    match expr {
        BoundExpr::Column(i) => row.value_at(*i).cloned().ok_or_else(|| {
            BeasError::execution(format!(
                "column #{i} out of bounds for row of arity {}",
                row.arity()
            ))
        }),
        BoundExpr::Literal(v) => Ok(v.clone()),
        BoundExpr::Binary { op, left, right } => {
            let l = evaluate(left, row)?;
            let r = evaluate(right, row)?;
            eval_binary(*op, &l, &r)
        }
        BoundExpr::Not(e) => {
            let v = evaluate(e, row)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Bool(b) => Ok(Value::Bool(!b)),
                other => Err(BeasError::type_err(format!(
                    "NOT applied to non-boolean {}",
                    other.type_name()
                ))),
            }
        }
        BoundExpr::Negate(e) => {
            let v = evaluate(e, row)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(x) => Ok(Value::Float(-x)),
                other => Err(BeasError::type_err(format!(
                    "unary minus applied to {}",
                    other.type_name()
                ))),
            }
        }
        BoundExpr::IsNull { expr, negated } => {
            let v = evaluate(expr, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = evaluate(expr, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for alt in list {
                let a = evaluate(alt, row)?;
                match v.sql_eq(&a) {
                    Some(true) => return Ok(Value::Bool(!*negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        BoundExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = evaluate(expr, row)?;
            let lo = evaluate(low, row)?;
            let hi = evaluate(high, row)?;
            match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                (Some(a), Some(b)) => {
                    let within = a != Ordering::Less && b != Ordering::Greater;
                    Ok(Value::Bool(within != *negated))
                }
                _ => Ok(Value::Null),
            }
        }
        BoundExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = evaluate(expr, row)?;
            let p = evaluate(pattern, row)?;
            if v.is_null() || p.is_null() {
                return Ok(Value::Null);
            }
            let matched = like_match(v.as_str()?, p.as_str()?);
            Ok(Value::Bool(matched != *negated))
        }
    }
}

/// Evaluate a predicate expression, treating NULL (unknown) as `false`.
pub fn evaluate_predicate<R: ValueRow + ?Sized>(expr: &BoundExpr, row: &R) -> Result<bool> {
    Ok(evaluate(expr, row)?.is_truthy())
}

fn eval_binary(op: BinaryOperator, l: &Value, r: &Value) -> Result<Value> {
    use BinaryOperator::*;
    match op {
        And => Ok(match (as_tristate(l)?, as_tristate(r)?) {
            (Some(false), _) | (_, Some(false)) => Value::Bool(false),
            (Some(true), Some(true)) => Value::Bool(true),
            _ => Value::Null,
        }),
        Or => Ok(match (as_tristate(l)?, as_tristate(r)?) {
            (Some(true), _) | (_, Some(true)) => Value::Bool(true),
            (Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        }),
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            let cmp = l.sql_cmp(r);
            Ok(match cmp {
                None => {
                    if l.is_null() || r.is_null() {
                        Value::Null
                    } else {
                        return Err(BeasError::type_err(format!(
                            "cannot compare {} with {}",
                            l.type_name(),
                            r.type_name()
                        )));
                    }
                }
                Some(o) => Value::Bool(match op {
                    Eq => o == Ordering::Equal,
                    NotEq => o != Ordering::Equal,
                    Lt => o == Ordering::Less,
                    LtEq => o != Ordering::Greater,
                    Gt => o == Ordering::Greater,
                    GtEq => o != Ordering::Less,
                    _ => unreachable!(),
                }),
            })
        }
        Plus => l.add(r),
        Minus => l.sub(r),
        Multiply => l.mul(r),
        Divide => l.div(r),
    }
}

fn as_tristate(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        other => Err(BeasError::type_err(format!(
            "expected BOOLEAN in logical expression, got {}",
            other.type_name()
        ))),
    }
}

/// SQL `LIKE` matching with `%` (any substring) and `_` (any character).
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => s.is_empty(),
            Some(('%', rest)) => (0..=s.len()).any(|i| rec(&s[i..], rest)),
            Some(('_', rest)) => match s.split_first() {
                Some((_, srest)) => rec(srest, rest),
                None => false,
            },
            Some((c, rest)) => match s.split_first() {
                Some((sc, srest)) if sc == c => rec(srest, rest),
                _ => false,
            },
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

/// Aggregate functions supported by the engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateFunction {
    /// `COUNT(expr)` / `COUNT(*)`.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
}

impl AggregateFunction {
    /// Parse a function name into an aggregate, if it is one.
    pub fn from_name(name: &str) -> Option<AggregateFunction> {
        Some(match name.to_ascii_uppercase().as_str() {
            "COUNT" => AggregateFunction::Count,
            "SUM" => AggregateFunction::Sum,
            "AVG" => AggregateFunction::Avg,
            "MIN" => AggregateFunction::Min,
            "MAX" => AggregateFunction::Max,
            _ => return None,
        })
    }

    /// Output type of the aggregate given its input type.
    pub fn output_type(&self, input: Option<DataType>) -> DataType {
        match self {
            AggregateFunction::Count => DataType::Int,
            AggregateFunction::Avg => DataType::Float,
            AggregateFunction::Sum => match input {
                Some(DataType::Float) => DataType::Float,
                _ => DataType::Int,
            },
            AggregateFunction::Min | AggregateFunction::Max => input.unwrap_or(DataType::Int),
        }
    }

    /// Canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            AggregateFunction::Count => "COUNT",
            AggregateFunction::Sum => "SUM",
            AggregateFunction::Avg => "AVG",
            AggregateFunction::Min => "MIN",
            AggregateFunction::Max => "MAX",
        }
    }
}

impl fmt::Display for AggregateFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Running state for one aggregate over one group.
#[derive(Debug, Clone)]
pub struct Accumulator {
    func: AggregateFunction,
    distinct: bool,
    // beas-lint: allow(L002) -- DISTINCT de-dupes evaluated SQL values under
    // SQL equality, not join/index keys; canonicalizing here would merge
    // values SQL treats as distinct
    seen: HashSet<Value>,
    count: i64,
    sum: Value,
    min: Option<Value>,
    max: Option<Value>,
}

impl Accumulator {
    /// Create an accumulator for `func`, optionally de-duplicating inputs.
    pub fn new(func: AggregateFunction, distinct: bool) -> Self {
        Accumulator {
            func,
            distinct,
            seen: HashSet::new(),
            count: 0,
            sum: Value::Int(0),
            min: None,
            max: None,
        }
    }

    /// Fold one input value into the accumulator.  NULLs are ignored, per SQL.
    pub fn update(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        if self.distinct && !self.seen.insert(v.clone()) {
            return Ok(());
        }
        self.count += 1;
        match self.func {
            AggregateFunction::Count => {}
            AggregateFunction::Sum | AggregateFunction::Avg => {
                self.sum = self.sum.add(v)?;
            }
            AggregateFunction::Min => {
                let replace = match &self.min {
                    None => true,
                    Some(m) => v.total_cmp(m) == Ordering::Less,
                };
                if replace {
                    self.min = Some(v.clone());
                }
            }
            AggregateFunction::Max => {
                let replace = match &self.max {
                    None => true,
                    Some(m) => v.total_cmp(m) == Ordering::Greater,
                };
                if replace {
                    self.max = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    /// Fold another accumulator — built over a *disjoint partition* of the
    /// same group's input — into this one, as if this accumulator had also
    /// seen the other's rows.  This is the merge step of partitioned
    /// (morsel-parallel) aggregation: each worker accumulates its partition
    /// locally and the partials are merged in partition order.
    ///
    /// The caller must pair accumulators of the same function/distinctness
    /// (the engine merges positionally within a group).  Exactness caveat:
    /// `SUM`/`AVG` re-associate additions under merging — float rounding
    /// differs, and even checked integer addition is order-sensitive in its
    /// *overflow* behavior (a transient overflow of the left-to-right fold
    /// can vanish under per-partition summing) — so parallel planners
    /// should only partition aggregates whose merge is bit-exact in answers
    /// and errors (`COUNT`/`MIN`/`MAX`); see `beas_engine`'s gating.
    pub fn merge(&mut self, other: &Accumulator) -> Result<()> {
        debug_assert_eq!(self.func, other.func, "merging mismatched accumulators");
        debug_assert_eq!(self.distinct, other.distinct);
        if self.distinct {
            // Replay the other side's distinct values; `update` re-checks
            // the combined `seen` set, so values both sides saw count once.
            for v in &other.seen {
                self.update(v)?;
            }
            return Ok(());
        }
        self.count += other.count;
        match self.func {
            AggregateFunction::Count => {}
            AggregateFunction::Sum | AggregateFunction::Avg => {
                if other.count > 0 {
                    self.sum = self.sum.add(&other.sum)?;
                }
            }
            AggregateFunction::Min => {
                if let Some(v) = &other.min {
                    let replace = match &self.min {
                        None => true,
                        Some(m) => v.total_cmp(m) == Ordering::Less,
                    };
                    if replace {
                        self.min = Some(v.clone());
                    }
                }
            }
            AggregateFunction::Max => {
                if let Some(v) = &other.max {
                    let replace = match &self.max {
                        None => true,
                        Some(m) => v.total_cmp(m) == Ordering::Greater,
                    };
                    if replace {
                        self.max = Some(v.clone());
                    }
                }
            }
        }
        Ok(())
    }

    /// Produce the final aggregate value.
    pub fn finish(&self) -> Value {
        match self.func {
            AggregateFunction::Count => Value::Int(self.count),
            AggregateFunction::Sum => {
                if self.count == 0 {
                    Value::Null
                } else {
                    self.sum.clone()
                }
            }
            AggregateFunction::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    // count > 0, so division cannot fail
                    self.sum.div(&Value::Int(self.count)).unwrap_or(Value::Null)
                }
            }
            AggregateFunction::Min => self.min.clone().unwrap_or(Value::Null),
            AggregateFunction::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Vec<Value> {
        vec![
            Value::Int(10),
            Value::str("bank"),
            Value::Null,
            Value::Float(2.5),
        ]
    }

    #[test]
    fn evaluate_columns_and_literals() {
        assert_eq!(
            evaluate(&BoundExpr::Column(0), &row()).unwrap(),
            Value::Int(10)
        );
        assert!(evaluate(&BoundExpr::Column(9), &row()).is_err());
        assert_eq!(
            evaluate(&BoundExpr::Literal(Value::str("x")), &row()).unwrap(),
            Value::str("x")
        );
    }

    #[test]
    fn evaluate_comparisons_and_logic() {
        let e = BoundExpr::Binary {
            op: BinaryOperator::And,
            left: Box::new(BoundExpr::Binary {
                op: BinaryOperator::Gt,
                left: Box::new(BoundExpr::Column(0)),
                right: Box::new(BoundExpr::Literal(Value::Int(5))),
            }),
            right: Box::new(BoundExpr::Binary {
                op: BinaryOperator::Eq,
                left: Box::new(BoundExpr::Column(1)),
                right: Box::new(BoundExpr::Literal(Value::str("bank"))),
            }),
        };
        assert!(evaluate_predicate(&e, &row()).unwrap());
    }

    #[test]
    fn null_three_valued_logic() {
        // NULL AND false = false, NULL AND true = NULL, NULL OR true = true
        let null = BoundExpr::Literal(Value::Null);
        let lit_true = BoundExpr::Literal(Value::Bool(true));
        let lit_false = BoundExpr::Literal(Value::Bool(false));
        // NULL = 3 produces NULL
        let null_cmp = BoundExpr::Binary {
            op: BinaryOperator::Eq,
            left: Box::new(null.clone()),
            right: Box::new(BoundExpr::Literal(Value::Int(3))),
        };
        assert_eq!(evaluate(&null_cmp, &[]).unwrap(), Value::Null);
        let and_false = BoundExpr::Binary {
            op: BinaryOperator::And,
            left: Box::new(null_cmp.clone()),
            right: Box::new(lit_false),
        };
        assert_eq!(evaluate(&and_false, &[]).unwrap(), Value::Bool(false));
        let or_true = BoundExpr::Binary {
            op: BinaryOperator::Or,
            left: Box::new(null_cmp.clone()),
            right: Box::new(lit_true.clone()),
        };
        assert_eq!(evaluate(&or_true, &[]).unwrap(), Value::Bool(true));
        let and_true = BoundExpr::Binary {
            op: BinaryOperator::And,
            left: Box::new(null_cmp),
            right: Box::new(lit_true),
        };
        assert_eq!(evaluate(&and_true, &[]).unwrap(), Value::Null);
    }

    #[test]
    fn is_null_in_list_between_like() {
        let isnull = BoundExpr::IsNull {
            expr: Box::new(BoundExpr::Column(2)),
            negated: false,
        };
        assert!(evaluate_predicate(&isnull, &row()).unwrap());
        let inlist = BoundExpr::InList {
            expr: Box::new(BoundExpr::Column(1)),
            list: vec![
                BoundExpr::Literal(Value::str("bank")),
                BoundExpr::Literal(Value::str("hospital")),
            ],
            negated: false,
        };
        assert!(evaluate_predicate(&inlist, &row()).unwrap());
        let between = BoundExpr::Between {
            expr: Box::new(BoundExpr::Column(0)),
            low: Box::new(BoundExpr::Literal(Value::Int(1))),
            high: Box::new(BoundExpr::Literal(Value::Int(10))),
            negated: false,
        };
        assert!(evaluate_predicate(&between, &row()).unwrap());
        let like = BoundExpr::Like {
            expr: Box::new(BoundExpr::Column(1)),
            pattern: Box::new(BoundExpr::Literal(Value::str("ba%"))),
            negated: false,
        };
        assert!(evaluate_predicate(&like, &row()).unwrap());
    }

    #[test]
    fn in_list_null_semantics() {
        // 1 IN (2, NULL) is NULL (unknown), 1 NOT IN (2, NULL) is NULL too.
        let e = BoundExpr::InList {
            expr: Box::new(BoundExpr::Literal(Value::Int(1))),
            list: vec![
                BoundExpr::Literal(Value::Int(2)),
                BoundExpr::Literal(Value::Null),
            ],
            negated: false,
        };
        assert_eq!(evaluate(&e, &[]).unwrap(), Value::Null);
    }

    #[test]
    fn like_matching() {
        assert!(like_match("hello", "he%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%"));
        assert!(!like_match("hello", "He%"));
        assert!(!like_match("hello", "h_x%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
    }

    #[test]
    fn accumulators() {
        let vals = [Value::Int(3), Value::Int(1), Value::Null, Value::Int(3)];
        let mut count = Accumulator::new(AggregateFunction::Count, false);
        let mut count_d = Accumulator::new(AggregateFunction::Count, true);
        let mut sum = Accumulator::new(AggregateFunction::Sum, false);
        let mut avg = Accumulator::new(AggregateFunction::Avg, false);
        let mut min = Accumulator::new(AggregateFunction::Min, false);
        let mut max = Accumulator::new(AggregateFunction::Max, false);
        for v in &vals {
            for acc in [
                &mut count,
                &mut count_d,
                &mut sum,
                &mut avg,
                &mut min,
                &mut max,
            ] {
                acc.update(v).unwrap();
            }
        }
        assert_eq!(count.finish(), Value::Int(3)); // NULL ignored
        assert_eq!(count_d.finish(), Value::Int(2)); // distinct {3, 1}
        assert_eq!(sum.finish(), Value::Int(7));
        assert_eq!(avg.finish(), Value::Float(7.0 / 3.0));
        assert_eq!(min.finish(), Value::Int(1));
        assert_eq!(max.finish(), Value::Int(3));
    }

    #[test]
    fn merged_partitions_equal_one_accumulator() {
        // Splitting the input across partitions and merging the partials in
        // any grouping must give the one-accumulator answer — the invariant
        // morsel-parallel aggregation rests on.
        let vals = [
            Value::Int(3),
            Value::Int(1),
            Value::Null,
            Value::Int(3),
            Value::Int(-2),
            Value::Int(1),
        ];
        for func in [
            AggregateFunction::Count,
            AggregateFunction::Sum,
            AggregateFunction::Avg,
            AggregateFunction::Min,
            AggregateFunction::Max,
        ] {
            for distinct in [false, true] {
                for split in 0..=vals.len() {
                    let mut whole = Accumulator::new(func, distinct);
                    for v in &vals {
                        whole.update(v).unwrap();
                    }
                    let (a, b) = vals.split_at(split);
                    let mut left = Accumulator::new(func, distinct);
                    let mut right = Accumulator::new(func, distinct);
                    for v in a {
                        left.update(v).unwrap();
                    }
                    for v in b {
                        right.update(v).unwrap();
                    }
                    left.merge(&right).unwrap();
                    assert_eq!(
                        left.finish(),
                        whole.finish(),
                        "{func:?} distinct={distinct} split={split}"
                    );
                    // merging an empty partial is a no-op
                    left.merge(&Accumulator::new(func, distinct)).unwrap();
                    assert_eq!(left.finish(), whole.finish());
                }
            }
        }
    }

    #[test]
    fn empty_group_aggregates() {
        assert_eq!(
            Accumulator::new(AggregateFunction::Count, false).finish(),
            Value::Int(0)
        );
        assert!(Accumulator::new(AggregateFunction::Sum, false)
            .finish()
            .is_null());
        assert!(Accumulator::new(AggregateFunction::Avg, false)
            .finish()
            .is_null());
        assert!(Accumulator::new(AggregateFunction::Min, false)
            .finish()
            .is_null());
    }

    #[test]
    fn aggregate_function_metadata() {
        assert_eq!(
            AggregateFunction::from_name("count"),
            Some(AggregateFunction::Count)
        );
        assert_eq!(AggregateFunction::from_name("median"), None);
        assert_eq!(AggregateFunction::Count.output_type(None), DataType::Int);
        assert_eq!(
            AggregateFunction::Sum.output_type(Some(DataType::Float)),
            DataType::Float
        );
        assert_eq!(
            AggregateFunction::Min.output_type(Some(DataType::Str)),
            DataType::Str
        );
    }

    #[test]
    fn referenced_columns_and_remap() {
        let e = BoundExpr::Binary {
            op: BinaryOperator::And,
            left: Box::new(BoundExpr::Binary {
                op: BinaryOperator::Eq,
                left: Box::new(BoundExpr::Column(3)),
                right: Box::new(BoundExpr::Column(1)),
            }),
            right: Box::new(BoundExpr::IsNull {
                expr: Box::new(BoundExpr::Column(3)),
                negated: true,
            }),
        };
        assert_eq!(e.referenced_columns(), vec![1, 3]);
        let mut map = std::collections::HashMap::new();
        map.insert(1usize, 0usize);
        map.insert(3usize, 1usize);
        let remapped = e.remap_columns(&map).unwrap();
        assert_eq!(remapped.referenced_columns(), vec![0, 1]);
        map.remove(&1);
        assert!(e.remap_columns(&map).is_none());
    }

    #[test]
    fn display_bound_expr() {
        let e = BoundExpr::Binary {
            op: BinaryOperator::LtEq,
            left: Box::new(BoundExpr::Column(0)),
            right: Box::new(BoundExpr::Literal(Value::Int(7))),
        };
        assert_eq!(e.to_string(), "(#0 <= 7)");
    }

    #[test]
    fn type_errors_surface() {
        let e = BoundExpr::Binary {
            op: BinaryOperator::Lt,
            left: Box::new(BoundExpr::Literal(Value::str("a"))),
            right: Box::new(BoundExpr::Literal(Value::Int(1))),
        };
        assert!(evaluate(&e, &[]).is_err());
        let not_int = BoundExpr::Not(Box::new(BoundExpr::Literal(Value::Int(1))));
        assert!(evaluate(&not_int, &[]).is_err());
    }
}
