//! Hand-written SQL lexer.

use beas_common::{BeasError, Result};
use std::fmt;

/// Keywords recognised by the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    Select,
    Distinct,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Limit,
    Asc,
    Desc,
    And,
    Or,
    Not,
    In,
    Between,
    Like,
    Is,
    Null,
    True,
    False,
    As,
    Join,
    Inner,
    On,
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl Keyword {
    fn from_ident(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s.to_ascii_uppercase().as_str() {
            "SELECT" => Select,
            "DISTINCT" => Distinct,
            "FROM" => From,
            "WHERE" => Where,
            "GROUP" => Group,
            "BY" => By,
            "HAVING" => Having,
            "ORDER" => Order,
            "LIMIT" => Limit,
            "ASC" => Asc,
            "DESC" => Desc,
            "AND" => And,
            "OR" => Or,
            "NOT" => Not,
            "IN" => In,
            "BETWEEN" => Between,
            "LIKE" => Like,
            "IS" => Is,
            "NULL" => Null,
            "TRUE" => True,
            "FALSE" => False,
            "AS" => As,
            "JOIN" => Join,
            "INNER" => Inner,
            "ON" => On,
            "COUNT" => Count,
            "SUM" => Sum,
            "AVG" => Avg,
            "MIN" => Min,
            "MAX" => Max,
            _ => return None,
        })
    }

    /// Canonical (upper-case) spelling.
    pub fn as_str(&self) -> &'static str {
        use Keyword::*;
        match self {
            Select => "SELECT",
            Distinct => "DISTINCT",
            From => "FROM",
            Where => "WHERE",
            Group => "GROUP",
            By => "BY",
            Having => "HAVING",
            Order => "ORDER",
            Limit => "LIMIT",
            Asc => "ASC",
            Desc => "DESC",
            And => "AND",
            Or => "OR",
            Not => "NOT",
            In => "IN",
            Between => "BETWEEN",
            Like => "LIKE",
            Is => "IS",
            Null => "NULL",
            True => "TRUE",
            False => "FALSE",
            As => "AS",
            Join => "JOIN",
            Inner => "INNER",
            On => "ON",
            Count => "COUNT",
            Sum => "SUM",
            Avg => "AVG",
            Min => "MIN",
            Max => "MAX",
        }
    }
}

/// Lexical tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A keyword.
    Keyword(Keyword),
    /// An identifier (table, alias or column name), lower-cased.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes removed, `''` unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `;`
    Semicolon,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{}", k.as_str()),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Comma => write!(f, ","),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Semicolon => write!(f, ";"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// The lexer: converts SQL text into a token stream.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over the given SQL text.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenize the whole input, appending a trailing [`Token::Eof`].
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let done = t == Token::Eof;
            out.push(t);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_whitespace_and_comments(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'-') if self.src.get(self.pos + 1) == Some(&b'-') => {
                    // line comment
                    while let Some(c) = self.peek() {
                        self.pos += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_whitespace_and_comments()?;
        let c = match self.peek() {
            None => return Ok(Token::Eof),
            Some(c) => c,
        };
        match c {
            b',' => {
                self.bump();
                Ok(Token::Comma)
            }
            b'(' => {
                self.bump();
                Ok(Token::LParen)
            }
            b')' => {
                self.bump();
                Ok(Token::RParen)
            }
            b'.' => {
                self.bump();
                Ok(Token::Dot)
            }
            b'*' => {
                self.bump();
                Ok(Token::Star)
            }
            b'+' => {
                self.bump();
                Ok(Token::Plus)
            }
            b'-' => {
                self.bump();
                Ok(Token::Minus)
            }
            b'/' => {
                self.bump();
                Ok(Token::Slash)
            }
            b';' => {
                self.bump();
                Ok(Token::Semicolon)
            }
            b'=' => {
                self.bump();
                Ok(Token::Eq)
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(Token::NotEq)
                } else {
                    Err(BeasError::parse("unexpected character `!`"))
                }
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        Ok(Token::LtEq)
                    }
                    Some(b'>') => {
                        self.bump();
                        Ok(Token::NotEq)
                    }
                    _ => Ok(Token::Lt),
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(Token::GtEq)
                } else {
                    Ok(Token::Gt)
                }
            }
            b'\'' => self.lex_string(),
            c if c.is_ascii_digit() => self.lex_number(),
            c if c.is_ascii_alphabetic() || c == b'_' || c == b'"' => self.lex_ident(),
            other => Err(BeasError::parse(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn lex_string(&mut self) -> Result<Token> {
        // consume opening quote
        self.bump();
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(BeasError::parse("unterminated string literal")),
                Some(b'\'') => {
                    // `''` is an escaped quote
                    if self.peek() == Some(b'\'') {
                        self.bump();
                        s.push('\'');
                    } else {
                        return Ok(Token::Str(s));
                    }
                }
                Some(c) => s.push(c as char),
            }
        }
    }

    fn lex_number(&mut self) -> Result<Token> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.pos += 1;
            } else if c == b'.'
                && !is_float
                && self
                    .src
                    .get(self.pos + 1)
                    .map(|d| d.is_ascii_digit())
                    .unwrap_or(false)
            {
                is_float = true;
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| BeasError::parse("invalid utf-8 in numeric literal"))?;
        if is_float {
            text.parse::<f64>()
                .map(Token::Float)
                .map_err(|_| BeasError::parse(format!("invalid float literal {text:?}")))
        } else {
            text.parse::<i64>()
                .map(Token::Int)
                .map_err(|_| BeasError::parse(format!("invalid integer literal {text:?}")))
        }
    }

    fn lex_ident(&mut self) -> Result<Token> {
        // double-quoted identifier
        if self.peek() == Some(b'"') {
            self.bump();
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' {
                    break;
                }
                self.pos += 1;
            }
            if self.peek() != Some(b'"') {
                return Err(BeasError::parse("unterminated quoted identifier"));
            }
            let text = std::str::from_utf8(&self.src[start..self.pos])
                .map_err(|_| BeasError::parse("invalid utf-8 in identifier"))?
                .to_string();
            self.bump();
            return Ok(Token::Ident(text.to_ascii_lowercase()));
        }
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| BeasError::parse("invalid utf-8 in identifier"))?;
        if let Some(kw) = Keyword::from_ident(text) {
            Ok(Token::Keyword(kw))
        } else {
            Ok(Token::Ident(text.to_ascii_lowercase()))
        }
    }
}

/// Tokenize SQL text.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    Lexer::new(sql).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_simple_select() {
        let toks = tokenize("SELECT a, b FROM t WHERE a = 1;").unwrap();
        assert_eq!(toks[0], Token::Keyword(Keyword::Select));
        assert_eq!(toks[1], Token::Ident("a".into()));
        assert_eq!(toks[2], Token::Comma);
        assert!(toks.contains(&Token::Eq));
        assert!(toks.contains(&Token::Int(1)));
        assert_eq!(*toks.last().unwrap(), Token::Eof);
    }

    #[test]
    fn lex_operators() {
        let toks = tokenize("a <= 1 AND b >= 2 AND c <> 3 AND d != 4 AND e < 5 AND f > 6").unwrap();
        assert!(toks.contains(&Token::LtEq));
        assert!(toks.contains(&Token::GtEq));
        assert_eq!(toks.iter().filter(|t| **t == Token::NotEq).count(), 2);
        assert!(toks.contains(&Token::Lt));
        assert!(toks.contains(&Token::Gt));
    }

    #[test]
    fn lex_strings_with_escapes() {
        let toks = tokenize("name = 'o''brien'").unwrap();
        assert!(toks.contains(&Token::Str("o'brien".into())));
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn lex_numbers() {
        let toks = tokenize("1 2.5 300").unwrap();
        assert_eq!(toks[0], Token::Int(1));
        assert_eq!(toks[1], Token::Float(2.5));
        assert_eq!(toks[2], Token::Int(300));
    }

    #[test]
    fn identifiers_are_lowercased_and_keywords_case_insensitive() {
        let toks = tokenize("SeLeCt MyCol FROM \"MyTable\"").unwrap();
        assert_eq!(toks[0], Token::Keyword(Keyword::Select));
        assert_eq!(toks[1], Token::Ident("mycol".into()));
        assert_eq!(toks[3], Token::Ident("mytable".into()));
    }

    #[test]
    fn line_comments_are_skipped() {
        let toks = tokenize("SELECT a -- comment here\nFROM t").unwrap();
        assert_eq!(toks.len(), 5); // SELECT a FROM t EOF
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(tokenize("SELECT @a").is_err());
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn dotted_reference() {
        let toks = tokenize("call.region").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("call".into()),
                Token::Dot,
                Token::Ident("region".into()),
                Token::Eof
            ]
        );
    }
}
