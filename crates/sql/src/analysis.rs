//! Predicate analysis shared by the baseline optimizer and the BEAS
//! coverage checker: conjunct splitting and classification of the WHERE
//! clause into constant bindings, equi-join edges and residual predicates.

use crate::ast::{BinaryOperator, Expr, Literal};
use crate::binder::literal_to_value;
use beas_common::Value;

/// Split an expression into its top-level conjuncts (`AND`-separated parts).
pub fn split_conjuncts(expr: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    fn rec(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::BinaryOp {
                left,
                op: BinaryOperator::And,
                right,
            } => {
                rec(left, out);
                rec(right, out);
            }
            other => out.push(other.clone()),
        }
    }
    rec(expr, &mut out);
    out
}

/// Rebuild a conjunction from a list of conjuncts (inverse of
/// [`split_conjuncts`]); returns `None` for an empty list.
pub fn conjoin(conjuncts: &[Expr]) -> Option<Expr> {
    let mut iter = conjuncts.iter().cloned();
    let first = iter.next()?;
    Some(iter.fold(first, Expr::and))
}

/// A qualified column reference `(alias, column)` appearing in a predicate.
pub type QualifiedColumn = (Option<String>, String);

/// Classification of one conjunct of a WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum ConjunctClass {
    /// `column = <literal>` — binds a column to a constant.
    ColEqConst {
        /// The column.
        column: QualifiedColumn,
        /// The constant value.
        value: Value,
    },
    /// `column IN (<literals>)` — binds a column to a small set of constants.
    ColInConsts {
        /// The column.
        column: QualifiedColumn,
        /// The constant alternatives.
        values: Vec<Value>,
    },
    /// `column = column` — an equi-join (or intra-table equality) edge.
    ColEqCol {
        /// Left column.
        left: QualifiedColumn,
        /// Right column.
        right: QualifiedColumn,
    },
    /// A range/selection predicate over a single column
    /// (`<`, `<=`, `>`, `>=`, `BETWEEN`, `<>`, `LIKE`, `IS NULL`).
    SingleColumnFilter {
        /// The column.
        column: QualifiedColumn,
        /// The original predicate.
        predicate: Expr,
    },
    /// Anything else (multi-column filters, OR-trees, arithmetic, ...).
    Other(Expr),
}

impl ConjunctClass {
    /// The columns this conjunct mentions.
    pub fn columns(&self) -> Vec<QualifiedColumn> {
        match self {
            ConjunctClass::ColEqConst { column, .. }
            | ConjunctClass::ColInConsts { column, .. }
            | ConjunctClass::SingleColumnFilter { column, .. } => vec![column.clone()],
            ConjunctClass::ColEqCol { left, right } => vec![left.clone(), right.clone()],
            ConjunctClass::Other(e) => e.column_refs(),
        }
    }
}

fn as_column(e: &Expr) -> Option<QualifiedColumn> {
    match e {
        Expr::Column { table, name } => Some((
            table.as_ref().map(|t| t.to_ascii_lowercase()),
            name.to_ascii_lowercase(),
        )),
        _ => None,
    }
}

fn as_literal(e: &Expr) -> Option<Value> {
    match e {
        Expr::Literal(l) => Some(literal_to_value(l)),
        Expr::UnaryOp {
            op: crate::ast::UnaryOperator::Minus,
            expr,
        } => match expr.as_ref() {
            Expr::Literal(Literal::Int(i)) => Some(Value::Int(-i)),
            Expr::Literal(Literal::Float(x)) => Some(Value::Float(-x)),
            _ => None,
        },
        _ => None,
    }
}

/// Classify a single conjunct.
pub fn classify_conjunct(e: &Expr) -> ConjunctClass {
    // column = literal / literal = column / column = column
    if let Expr::BinaryOp { left, op, right } = e {
        if *op == BinaryOperator::Eq {
            match (
                as_column(left),
                as_column(right),
                as_literal(left),
                as_literal(right),
            ) {
                (Some(c), None, None, Some(v)) => {
                    return ConjunctClass::ColEqConst {
                        column: c,
                        value: v,
                    }
                }
                (None, Some(c), Some(v), None) => {
                    return ConjunctClass::ColEqConst {
                        column: c,
                        value: v,
                    }
                }
                (Some(l), Some(r), _, _) => return ConjunctClass::ColEqCol { left: l, right: r },
                _ => {}
            }
        }
        if op.is_comparison() {
            // single-column range predicate: column <op> literal or literal <op> column
            match (
                as_column(left),
                as_literal(right),
                as_literal(left),
                as_column(right),
            ) {
                (Some(c), Some(_), _, _) | (_, _, Some(_), Some(c)) => {
                    return ConjunctClass::SingleColumnFilter {
                        column: c,
                        predicate: e.clone(),
                    }
                }
                _ => {}
            }
        }
    }
    // column IN (literals)
    if let Expr::InList {
        expr,
        list,
        negated: false,
    } = e
    {
        if let Some(c) = as_column(expr) {
            let values: Option<Vec<Value>> = list.iter().map(as_literal).collect();
            if let Some(values) = values {
                return ConjunctClass::ColInConsts { column: c, values };
            }
        }
    }
    // single-column BETWEEN / LIKE / IS NULL / NOT IN over literals
    match e {
        Expr::Between {
            expr, low, high, ..
        } => {
            if let (Some(c), Some(_), Some(_)) =
                (as_column(expr), as_literal(low), as_literal(high))
            {
                return ConjunctClass::SingleColumnFilter {
                    column: c,
                    predicate: e.clone(),
                };
            }
        }
        Expr::Like { expr, pattern, .. } => {
            if let (Some(c), Some(_)) = (as_column(expr), as_literal(pattern)) {
                return ConjunctClass::SingleColumnFilter {
                    column: c,
                    predicate: e.clone(),
                };
            }
        }
        Expr::IsNull { expr, .. } => {
            if let Some(c) = as_column(expr) {
                return ConjunctClass::SingleColumnFilter {
                    column: c,
                    predicate: e.clone(),
                };
            }
        }
        Expr::InList {
            expr,
            list,
            negated: true,
        } => {
            if let Some(c) = as_column(expr) {
                if list.iter().all(|x| as_literal(x).is_some()) {
                    return ConjunctClass::SingleColumnFilter {
                        column: c,
                        predicate: e.clone(),
                    };
                }
            }
        }
        _ => {}
    }
    ConjunctClass::Other(e.clone())
}

/// Classify every top-level conjunct of a WHERE clause.
pub fn classify_conjuncts(selection: &Expr) -> Vec<ConjunctClass> {
    split_conjuncts(selection)
        .iter()
        .map(classify_conjunct)
        .collect()
}

/// A normalized structural summary of a SELECT statement's predicate,
/// convenient for both the baseline join planner and the BEAS checker.
#[derive(Debug, Clone, Default)]
pub struct QueryShape {
    /// Columns bound to a single constant.
    pub constant_bindings: Vec<(QualifiedColumn, Value)>,
    /// Columns bound to a small IN-list of constants.
    pub in_list_bindings: Vec<(QualifiedColumn, Vec<Value>)>,
    /// Equi-join / equality edges between columns.
    pub equalities: Vec<(QualifiedColumn, QualifiedColumn)>,
    /// Residual single-column filters.
    pub filters: Vec<(QualifiedColumn, Expr)>,
    /// Conjuncts that fit none of the above.
    pub other: Vec<Expr>,
}

impl QueryShape {
    /// Build the shape of a selection predicate (typically
    /// `SelectStatement::selection` merged with JOIN ON conditions).
    pub fn from_selection(selection: Option<&Expr>) -> QueryShape {
        let mut shape = QueryShape::default();
        let Some(sel) = selection else {
            return shape;
        };
        for class in classify_conjuncts(sel) {
            match class {
                ConjunctClass::ColEqConst { column, value } => {
                    shape.constant_bindings.push((column, value))
                }
                ConjunctClass::ColInConsts { column, values } => {
                    shape.in_list_bindings.push((column, values))
                }
                ConjunctClass::ColEqCol { left, right } => shape.equalities.push((left, right)),
                ConjunctClass::SingleColumnFilter { column, predicate } => {
                    shape.filters.push((column, predicate))
                }
                ConjunctClass::Other(e) => shape.other.push(e),
            }
        }
        shape
    }

    /// Whether the shape contains disjunctions or other opaque predicates.
    pub fn has_opaque_predicates(&self) -> bool {
        !self.other.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;

    fn where_clause(sql: &str) -> Expr {
        parse_select(sql).unwrap().selection.unwrap()
    }

    #[test]
    fn split_and_rejoin() {
        let e = where_clause("SELECT a FROM t WHERE a = 1 AND b = 2 AND (c = 3 OR d = 4)");
        let cs = split_conjuncts(&e);
        assert_eq!(cs.len(), 3);
        let rejoined = conjoin(&cs).unwrap();
        assert_eq!(split_conjuncts(&rejoined).len(), 3);
        assert!(conjoin(&[]).is_none());
    }

    #[test]
    fn classify_constant_bindings() {
        let e = where_clause("SELECT a FROM t WHERE t.type = 'bank' AND 2016 = t.year AND x = -5");
        let cs = classify_conjuncts(&e);
        assert!(matches!(
            &cs[0],
            ConjunctClass::ColEqConst { column, value }
                if column.1 == "type" && *value == Value::str("bank")
        ));
        assert!(matches!(
            &cs[1],
            ConjunctClass::ColEqConst { column, value }
                if column.1 == "year" && *value == Value::Int(2016)
        ));
        assert!(matches!(
            &cs[2],
            ConjunctClass::ColEqConst { value, .. } if *value == Value::Int(-5)
        ));
    }

    #[test]
    fn classify_join_edges_and_filters() {
        let e = where_clause(
            "SELECT a FROM t WHERE t.pnum = s.pnum AND t.start_m <= 7 AND s.x BETWEEN 1 AND 2 \
             AND s.name LIKE 'a%' AND t.z IS NULL AND t.v IN (1,2) AND t.w NOT IN (3)",
        );
        let cs = classify_conjuncts(&e);
        assert!(matches!(&cs[0], ConjunctClass::ColEqCol { .. }));
        assert!(matches!(&cs[1], ConjunctClass::SingleColumnFilter { .. }));
        assert!(matches!(&cs[2], ConjunctClass::SingleColumnFilter { .. }));
        assert!(matches!(&cs[3], ConjunctClass::SingleColumnFilter { .. }));
        assert!(matches!(&cs[4], ConjunctClass::SingleColumnFilter { .. }));
        assert!(matches!(&cs[5], ConjunctClass::ColInConsts { values, .. } if values.len() == 2));
        assert!(matches!(&cs[6], ConjunctClass::SingleColumnFilter { .. }));
    }

    #[test]
    fn classify_other() {
        let e = where_clause("SELECT a FROM t WHERE a = 1 OR b = 2");
        let cs = classify_conjuncts(&e);
        assert_eq!(cs.len(), 1);
        assert!(matches!(&cs[0], ConjunctClass::Other(_)));
        let e2 = where_clause("SELECT a FROM t WHERE a + b = 3");
        assert!(matches!(
            &classify_conjuncts(&e2)[0],
            ConjunctClass::Other(_)
        ));
    }

    #[test]
    fn query_shape_example2() {
        let stmt = parse_select(
            "select call.region from call, package, business \
             where business.type = 't0' and business.region = 'r0' and \
             business.pnum = call.pnum and call.date = '2016-07-04' and \
             call.pnum = package.pnum and package.year = 2016 \
             and package.start_month <= 7 and package.end_month >= 7 and package.pid = 42",
        )
        .unwrap();
        let shape = QueryShape::from_selection(stmt.selection.as_ref());
        assert_eq!(shape.constant_bindings.len(), 5);
        assert_eq!(shape.equalities.len(), 2);
        assert_eq!(shape.filters.len(), 2);
        assert!(shape.other.is_empty());
        assert!(!shape.has_opaque_predicates());
    }

    #[test]
    fn empty_selection_shape() {
        let shape = QueryShape::from_selection(None);
        assert!(shape.constant_bindings.is_empty());
        assert!(!shape.has_opaque_predicates());
    }

    #[test]
    fn conjunct_columns() {
        let e = where_clause("SELECT a FROM t WHERE t.a = s.b");
        let c = classify_conjunct(&split_conjuncts(&e)[0]);
        let cols = c.columns();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].1, "a");
        assert_eq!(cols[1].1, "b");
    }
}
