//! Untyped SQL abstract syntax tree produced by the parser.
//!
//! The AST keeps enough structure to be re-rendered as SQL text (used by the
//! parser round-trip property tests and by the performance analyzer when it
//! prints plans).

use std::fmt;

/// A top-level SQL statement.  The workspace only evaluates queries; DDL and
/// DML are handled programmatically through the storage API.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A `SELECT` query.
    Select(SelectStatement),
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStatement {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projection list.
    pub projection: Vec<SelectItem>,
    /// Tables in the `FROM` clause (comma-separated factors).
    pub from: Vec<TableRef>,
    /// Explicit `JOIN ... ON` clauses attached after the first factor.
    pub joins: Vec<JoinClause>,
    /// `WHERE` predicate.
    pub selection: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderByItem>,
    /// `LIMIT` row count.
    pub limit: Option<u64>,
}

/// One item of the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// An expression with an optional `AS alias`.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional output alias.
        alias: Option<String>,
    },
}

/// A table factor in the `FROM` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Base-table name.
    pub name: String,
    /// Optional alias; defaults to the table name during binding.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name the rest of the query uses to refer to this factor.
    pub fn effective_alias(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// An explicit `JOIN ... ON ...` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// The joined table.
    pub table: TableRef,
    /// The `ON` condition.
    pub on: Expr,
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    /// Sort expression.
    pub expr: Expr,
    /// Ascending (`true`, default) or descending.
    pub asc: bool,
}

/// Literal values appearing in SQL text.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Floating point literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `TRUE` / `FALSE`.
    Bool(bool),
    /// `NULL`.
    Null,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOperator {
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Multiply,
    /// `/`
    Divide,
}

impl BinaryOperator {
    /// Whether the operator is a comparison producing a boolean.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOperator::Eq
                | BinaryOperator::NotEq
                | BinaryOperator::Lt
                | BinaryOperator::LtEq
                | BinaryOperator::Gt
                | BinaryOperator::GtEq
        )
    }

    /// SQL spelling of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinaryOperator::Eq => "=",
            BinaryOperator::NotEq => "<>",
            BinaryOperator::Lt => "<",
            BinaryOperator::LtEq => "<=",
            BinaryOperator::Gt => ">",
            BinaryOperator::GtEq => ">=",
            BinaryOperator::And => "AND",
            BinaryOperator::Or => "OR",
            BinaryOperator::Plus => "+",
            BinaryOperator::Minus => "-",
            BinaryOperator::Multiply => "*",
            BinaryOperator::Divide => "/",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOperator {
    /// `NOT`
    Not,
    /// unary `-`
    Minus,
}

/// An SQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A possibly-qualified column reference `table.column` or `column`.
    Column {
        /// Optional table / alias qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// A literal value.
    Literal(Literal),
    /// Binary operation.
    BinaryOp {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOperator,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    UnaryOp {
        /// Operator.
        op: UnaryOperator,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL` when true.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// The list of alternatives.
        list: Vec<Expr>,
        /// `NOT IN` when true.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// `NOT BETWEEN` when true.
        negated: bool,
    },
    /// `expr [NOT] LIKE 'pattern'`.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern (with `%` and `_` wildcards).
        pattern: Box<Expr>,
        /// `NOT LIKE` when true.
        negated: bool,
    },
    /// Function call, e.g. an aggregate `SUM(x)` or `COUNT(*)`.
    Function {
        /// Function name (upper-cased by the parser).
        name: String,
        /// Arguments; empty plus `wildcard` for `COUNT(*)`.
        args: Vec<Expr>,
        /// `DISTINCT` inside the call.
        distinct: bool,
        /// `COUNT(*)` marker.
        wildcard: bool,
    },
}

impl Expr {
    /// Shorthand for an unqualified column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            table: None,
            name: name.to_string(),
        }
    }

    /// Shorthand for a qualified column reference.
    pub fn qcol(table: &str, name: &str) -> Expr {
        Expr::Column {
            table: Some(table.to_string()),
            name: name.to_string(),
        }
    }

    /// Shorthand for an equality between two expressions.
    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::BinaryOp {
            left: Box::new(left),
            op: BinaryOperator::Eq,
            right: Box::new(right),
        }
    }

    /// Shorthand for conjunction.
    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::BinaryOp {
            left: Box::new(left),
            op: BinaryOperator::And,
            right: Box::new(right),
        }
    }

    /// Collect every column reference appearing in the expression.
    pub fn column_refs(&self) -> Vec<(Option<String>, String)> {
        let mut out = Vec::new();
        self.visit_columns(&mut |t, n| out.push((t.map(|s| s.to_string()), n.to_string())));
        out
    }

    /// Visit every column reference in the expression.
    pub fn visit_columns<'a>(&'a self, f: &mut impl FnMut(Option<&'a str>, &'a str)) {
        match self {
            Expr::Column { table, name } => f(table.as_deref(), name),
            Expr::Literal(_) => {}
            Expr::BinaryOp { left, right, .. } => {
                left.visit_columns(f);
                right.visit_columns(f);
            }
            Expr::UnaryOp { expr, .. } => expr.visit_columns(f),
            Expr::IsNull { expr, .. } => expr.visit_columns(f),
            Expr::InList { expr, list, .. } => {
                expr.visit_columns(f);
                for e in list {
                    e.visit_columns(f);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.visit_columns(f);
                low.visit_columns(f);
                high.visit_columns(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.visit_columns(f);
                pattern.visit_columns(f);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.visit_columns(f);
                }
            }
        }
    }

    /// Whether the expression contains an aggregate function call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Function { name, .. } => {
                matches!(name.as_str(), "COUNT" | "SUM" | "AVG" | "MIN" | "MAX")
            }
            Expr::Column { .. } | Expr::Literal(_) => false,
            Expr::BinaryOp { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::UnaryOp { expr, .. } => expr.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(|e| e.contains_aggregate())
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => write!(f, "{x}"),
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Literal::Null => write!(f, "NULL"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { table, name } => match table {
                Some(t) => write!(f, "{t}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::BinaryOp { left, op, right } => write!(f, "({left} {} {right})", op.symbol()),
            Expr::UnaryOp { op, expr } => match op {
                UnaryOperator::Not => write!(f, "(NOT {expr})"),
                UnaryOperator::Minus => write!(f, "(-{expr})"),
            },
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let items: Vec<String> = list.iter().map(|e| e.to_string()).collect();
                write!(
                    f,
                    "({expr} {}IN ({}))",
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE {pattern})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Function {
                name,
                args,
                distinct,
                wildcard,
            } => {
                if *wildcard {
                    write!(f, "{name}(*)")
                } else {
                    let items: Vec<String> = args.iter().map(|e| e.to_string()).collect();
                    write!(
                        f,
                        "{name}({}{})",
                        if *distinct { "DISTINCT " } else { "" },
                        items.join(", ")
                    )
                }
            }
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::QualifiedWildcard(t) => write!(f, "{t}.*"),
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => write!(f, "{expr} AS {a}"),
                None => write!(f, "{expr}"),
            },
        }
    }
}

impl fmt::Display for SelectStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        let proj: Vec<String> = self.projection.iter().map(|p| p.to_string()).collect();
        write!(f, "{}", proj.join(", "))?;
        if !self.from.is_empty() {
            let from: Vec<String> = self
                .from
                .iter()
                .map(|t| match &t.alias {
                    Some(a) => format!("{} {a}", t.name),
                    None => t.name.clone(),
                })
                .collect();
            write!(f, " FROM {}", from.join(", "))?;
        }
        for j in &self.joins {
            let t = match &j.table.alias {
                Some(a) => format!("{} {a}", j.table.name),
                None => j.table.name.clone(),
            };
            write!(f, " JOIN {t} ON {}", j.on)?;
        }
        if let Some(w) = &self.selection {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            let g: Vec<String> = self.group_by.iter().map(|e| e.to_string()).collect();
            write!(f, " GROUP BY {}", g.join(", "))?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            let o: Vec<String> = self
                .order_by
                .iter()
                .map(|i| format!("{}{}", i.expr, if i.asc { "" } else { " DESC" }))
                .collect();
            write!(f, " ORDER BY {}", o.join(", "))?;
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_helpers_and_display() {
        let e = Expr::and(
            Expr::eq(Expr::qcol("call", "pnum"), Expr::qcol("package", "pnum")),
            Expr::eq(
                Expr::col("date"),
                Expr::Literal(Literal::Str("2016-07-04".into())),
            ),
        );
        let s = e.to_string();
        assert!(s.contains("call.pnum = package.pnum"));
        assert!(s.contains("'2016-07-04'"));
        assert_eq!(e.column_refs().len(), 3);
        assert!(!e.contains_aggregate());
    }

    #[test]
    fn aggregate_detection() {
        let e = Expr::Function {
            name: "COUNT".into(),
            args: vec![],
            distinct: false,
            wildcard: true,
        };
        assert!(e.contains_aggregate());
        assert_eq!(e.to_string(), "COUNT(*)");
        let e2 = Expr::BinaryOp {
            left: Box::new(e),
            op: BinaryOperator::Gt,
            right: Box::new(Expr::Literal(Literal::Int(5))),
        };
        assert!(e2.contains_aggregate());
    }

    #[test]
    fn select_display() {
        let stmt = SelectStatement {
            distinct: true,
            projection: vec![SelectItem::Expr {
                expr: Expr::qcol("call", "region"),
                alias: None,
            }],
            from: vec![
                TableRef {
                    name: "call".into(),
                    alias: None,
                },
                TableRef {
                    name: "business".into(),
                    alias: Some("b".into()),
                },
            ],
            joins: vec![],
            selection: Some(Expr::eq(
                Expr::qcol("b", "pnum"),
                Expr::qcol("call", "pnum"),
            )),
            group_by: vec![],
            having: None,
            order_by: vec![OrderByItem {
                expr: Expr::qcol("call", "region"),
                asc: false,
            }],
            limit: Some(10),
        };
        let s = stmt.to_string();
        assert!(s.starts_with("SELECT DISTINCT call.region FROM call, business b WHERE"));
        assert!(s.ends_with("ORDER BY call.region DESC LIMIT 10"));
    }

    #[test]
    fn literal_display_escapes_quotes() {
        assert_eq!(Literal::Str("o'brien".into()).to_string(), "'o''brien'");
        assert_eq!(Literal::Null.to_string(), "NULL");
        assert_eq!(Literal::Bool(true).to_string(), "TRUE");
    }

    #[test]
    fn effective_alias() {
        let t = TableRef {
            name: "call".into(),
            alias: None,
        };
        assert_eq!(t.effective_alias(), "call");
        let t2 = TableRef {
            name: "call".into(),
            alias: Some("c".into()),
        };
        assert_eq!(t2.effective_alias(), "c");
    }
}
