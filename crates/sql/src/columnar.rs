//! Column-wise (vectorized) evaluation of bound expressions over a
//! [`ColumnBatch`].
//!
//! The row evaluator in [`crate::expr`] is the semantics reference; every
//! kernel here must satisfy two obligations, which together let the engine
//! fall back to the row path per morsel with no observable difference
//! (`tests/vectorized_semantics.rs` pins this differentially):
//!
//! 1. **No under-erroring** — whenever the row path would error on any row
//!    of the selection, the kernel must also return an error (the caller
//!    then discards the batch output and re-runs the morsel row-by-row, so
//!    the error *message and position* always come from the row path; kernel
//!    error text is never user-visible).  Kernels may over-error — e.g.
//!    `IN` lists are evaluated eagerly where the row path short-circuits —
//!    because over-erroring only costs the fallback re-run, never changes
//!    the answer.
//! 2. **Bit-exact success** — when the kernel succeeds, its output equals
//!    the row path's output value-for-value (`Int(1)` stays distinct from
//!    `Float(1.0)`, `-0.0` keeps its sign, NaN its payload semantics).
//!
//! Comparison kernels read operands through [`ValueRef`] — typed columns
//! materialize stack-only numeric `Value`s and generic columns hand out
//! borrowed references — so the hot filter loops never clone heap values
//! (the row path clones both operands of every comparison, which is the
//! dominant cost this module removes).
//!
//! `LIKE` is deliberately left uncovered ([`covers`] returns `false`): it
//! keeps a known whole-fragment static-fallback shape in the test matrix.

use crate::ast::BinaryOperator;
use crate::expr::BoundExpr;
use beas_common::{BeasError, Column, ColumnBatch, Result, Value, ValueRef};
use std::cmp::Ordering;

/// Whether the columnar kernels cover `expr` over inputs of `arity` columns.
///
/// Covered expressions can still error at evaluation time (type errors,
/// arithmetic); coverage only guarantees the kernel computes the same
/// success values as the row path.  Column bounds are checked here once so
/// the per-element kernels never see an out-of-bounds reference.
pub fn covers(expr: &BoundExpr, arity: usize) -> bool {
    match expr {
        BoundExpr::Column(i) => *i < arity,
        BoundExpr::Literal(_) => true,
        BoundExpr::Binary { left, right, .. } => covers(left, arity) && covers(right, arity),
        BoundExpr::Not(e) | BoundExpr::Negate(e) => covers(e, arity),
        BoundExpr::IsNull { expr, .. } => covers(expr, arity),
        BoundExpr::InList { expr, list, .. } => {
            covers(expr, arity) && list.iter().all(|e| covers(e, arity))
        }
        BoundExpr::Between {
            expr, low, high, ..
        } => covers(expr, arity) && covers(low, arity) && covers(high, arity),
        // LIKE stays on the row path: a deliberate coverage hole so the
        // static whole-fragment fallback keeps real traffic.
        BoundExpr::Like { .. } => false,
    }
}

/// Flag every column index `expr` references in `mask` (indices past the
/// mask length are ignored — [`covers`] rejects them before any kernel
/// runs).  The engine uses this to build [`ColumnBatch`]es that materialize
/// only referenced columns of wide tables.
pub fn collect_columns(expr: &BoundExpr, mask: &mut [bool]) {
    match expr {
        BoundExpr::Column(i) => {
            if let Some(slot) = mask.get_mut(*i) {
                *slot = true;
            }
        }
        BoundExpr::Literal(_) => {}
        BoundExpr::Binary { left, right, .. } => {
            collect_columns(left, mask);
            collect_columns(right, mask);
        }
        BoundExpr::Not(e) | BoundExpr::Negate(e) => collect_columns(e, mask),
        BoundExpr::IsNull { expr, .. } => collect_columns(expr, mask),
        BoundExpr::InList { expr, list, .. } => {
            collect_columns(expr, mask);
            for e in list {
                collect_columns(e, mask);
            }
        }
        BoundExpr::Between {
            expr, low, high, ..
        } => {
            collect_columns(expr, mask);
            collect_columns(low, mask);
            collect_columns(high, mask);
        }
        BoundExpr::Like { expr, pattern, .. } => {
            collect_columns(expr, mask);
            collect_columns(pattern, mask);
        }
    }
}

/// Filter kernel: the subset of `sel` on which `pred` evaluates truthy
/// (SQL `WHERE` semantics: NULL and non-`Bool(true)` rows drop out).
pub fn filter_sel(pred: &BoundExpr, batch: &ColumnBatch<'_>, sel: &[u32]) -> Result<Vec<u32>> {
    let mut out = Vec::new();
    if logical_shape(pred) {
        // Logical shapes only produce Bool/NULL, so truthy ⇔ Some(true).
        let tri = eval_tristate(pred, batch, sel)?;
        for (pos, &row) in sel.iter().enumerate() {
            if tri[pos] == Some(true) {
                out.push(row);
            }
        }
    } else {
        // Column / literal / arithmetic roots: mirror `is_truthy` on the
        // materialized value (e.g. `WHERE 1` is falsy, not an error).
        let vals = eval_values(pred, batch, sel)?;
        for (pos, &row) in sel.iter().enumerate() {
            if vals[pos].is_truthy() {
                out.push(row);
            }
        }
    }
    Ok(out)
}

/// Evaluate `expr` to one owned [`Value`] per selected row — the projection
/// kernel, and the materialization path for operands that are not columns
/// or literals.
pub fn eval_values(expr: &BoundExpr, batch: &ColumnBatch<'_>, sel: &[u32]) -> Result<Vec<Value>> {
    match expr {
        BoundExpr::Column(i) => {
            let col = column(batch, *i)?;
            Ok(sel.iter().map(|&r| col.value_owned(r as usize)).collect())
        }
        BoundExpr::Literal(v) => Ok(vec![v.clone(); sel.len()]),
        BoundExpr::Binary { op, left, right } => match op {
            BinaryOperator::Plus
            | BinaryOperator::Minus
            | BinaryOperator::Multiply
            | BinaryOperator::Divide => {
                let l = operand(left, batch, sel)?;
                let r = operand(right, batch, sel)?;
                let mut out = Vec::with_capacity(sel.len());
                for (pos, &row) in sel.iter().enumerate() {
                    let lv = l.at(pos, row as usize);
                    let rv = r.at(pos, row as usize);
                    let (lv, rv) = (lv.get(), rv.get());
                    out.push(match op {
                        BinaryOperator::Plus => lv.add(rv)?,
                        BinaryOperator::Minus => lv.sub(rv)?,
                        BinaryOperator::Multiply => lv.mul(rv)?,
                        _ => lv.div(rv)?,
                    });
                }
                Ok(out)
            }
            _ => Ok(tristate_to_values(eval_tristate(expr, batch, sel)?)),
        },
        BoundExpr::Negate(e) => {
            let vals = operand(e, batch, sel)?;
            let mut out = Vec::with_capacity(sel.len());
            for (pos, &row) in sel.iter().enumerate() {
                out.push(match vals.at(pos, row as usize).get() {
                    Value::Null => Value::Null,
                    Value::Int(i) => Value::Int(-i),
                    Value::Float(x) => Value::Float(-x),
                    other => {
                        return Err(BeasError::type_err(format!(
                            "unary minus applied to {}",
                            other.type_name()
                        )))
                    }
                });
            }
            Ok(out)
        }
        // The remaining covered shapes (NOT, IS NULL, IN, BETWEEN) only
        // produce Bool/NULL; compute them as tristates and materialize.
        _ => Ok(tristate_to_values(eval_tristate(expr, batch, sel)?)),
    }
}

/// Evaluate a logical-shaped expression to one tristate per selected row
/// (`Some(bool)` ⇔ row path yields `Value::Bool`, `None` ⇔ `Value::Null`).
///
/// Non-logical expressions (columns, literals, arithmetic) are materialized
/// and folded through the same NULL/Bool/error rule as the row path's
/// `as_tristate`, so `AND`/`OR` over a non-boolean operand errors here too.
pub fn eval_tristate(
    expr: &BoundExpr,
    batch: &ColumnBatch<'_>,
    sel: &[u32],
) -> Result<Vec<Option<bool>>> {
    use BinaryOperator::*;
    match expr {
        BoundExpr::Binary { op, left, right } => match op {
            And => {
                // The row path evaluates both operands unconditionally
                // (no short-circuit), so evaluating both over the full
                // selection preserves error behavior exactly.
                let lt = eval_tristate(left, batch, sel)?;
                let rt = eval_tristate(right, batch, sel)?;
                Ok(lt
                    .into_iter()
                    .zip(rt)
                    .map(|(a, b)| match (a, b) {
                        (Some(false), _) | (_, Some(false)) => Some(false),
                        (Some(true), Some(true)) => Some(true),
                        _ => None,
                    })
                    .collect())
            }
            Or => {
                let lt = eval_tristate(left, batch, sel)?;
                let rt = eval_tristate(right, batch, sel)?;
                Ok(lt
                    .into_iter()
                    .zip(rt)
                    .map(|(a, b)| match (a, b) {
                        (Some(true), _) | (_, Some(true)) => Some(true),
                        (Some(false), Some(false)) => Some(false),
                        _ => None,
                    })
                    .collect())
            }
            Eq | NotEq | Lt | LtEq | Gt | GtEq => {
                let l = operand(left, batch, sel)?;
                let r = operand(right, batch, sel)?;
                let mut out = Vec::with_capacity(sel.len());
                for (pos, &row) in sel.iter().enumerate() {
                    let lv = l.at(pos, row as usize);
                    let rv = r.at(pos, row as usize);
                    let (lv, rv) = (lv.get(), rv.get());
                    out.push(match lv.sql_cmp(rv) {
                        None => {
                            if lv.is_null() || rv.is_null() {
                                None
                            } else {
                                return Err(BeasError::type_err(format!(
                                    "cannot compare {} with {}",
                                    lv.type_name(),
                                    rv.type_name()
                                )));
                            }
                        }
                        Some(o) => Some(match op {
                            Eq => o == Ordering::Equal,
                            NotEq => o != Ordering::Equal,
                            Lt => o == Ordering::Less,
                            LtEq => o != Ordering::Greater,
                            Gt => o == Ordering::Greater,
                            _ => o != Ordering::Less,
                        }),
                    });
                }
                Ok(out)
            }
            Plus | Minus | Multiply | Divide => tristate_of_values(eval_values(expr, batch, sel)?),
        },
        BoundExpr::Not(e) => {
            // Same NULL/Bool/error domain as the row path's NOT.
            let tri = eval_tristate(e, batch, sel)?;
            Ok(tri.into_iter().map(|t| t.map(|b| !b)).collect())
        }
        BoundExpr::IsNull { expr, negated } => {
            if let BoundExpr::Column(i) = expr.as_ref() {
                // Fast path: IS NULL of a column reads the validity bitmap.
                let col = column(batch, *i)?;
                return Ok(sel
                    .iter()
                    .map(|&r| Some(col.is_valid(r as usize) == *negated))
                    .collect());
            }
            let vals = operand(expr, batch, sel)?;
            Ok(sel
                .iter()
                .enumerate()
                .map(|(pos, &row)| Some(vals.at(pos, row as usize).get().is_null() != *negated))
                .collect())
        }
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = operand(expr, batch, sel)?;
            // Eager alternative evaluation: may error where the row path
            // short-circuits after an earlier match — an allowed
            // over-error (the fallback re-run restores row semantics).
            let alts = list
                .iter()
                .map(|alt| operand(alt, batch, sel))
                .collect::<Result<Vec<_>>>()?;
            let mut out = Vec::with_capacity(sel.len());
            for (pos, &row) in sel.iter().enumerate() {
                let vv = v.at(pos, row as usize);
                let vv = vv.get();
                if vv.is_null() {
                    out.push(None);
                    continue;
                }
                let mut saw_null = false;
                let mut verdict = Some(*negated);
                for alt in &alts {
                    match vv.sql_eq(alt.at(pos, row as usize).get()) {
                        Some(true) => {
                            verdict = Some(!*negated);
                            break;
                        }
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if verdict == Some(*negated) && saw_null {
                    verdict = None;
                }
                out.push(verdict);
            }
            Ok(out)
        }
        BoundExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = operand(expr, batch, sel)?;
            let lo = operand(low, batch, sel)?;
            let hi = operand(high, batch, sel)?;
            let mut out = Vec::with_capacity(sel.len());
            for (pos, &row) in sel.iter().enumerate() {
                let vv = v.at(pos, row as usize);
                let lv = lo.at(pos, row as usize);
                let hv = hi.at(pos, row as usize);
                let vv = vv.get();
                out.push(match (vv.sql_cmp(lv.get()), vv.sql_cmp(hv.get())) {
                    (Some(a), Some(b)) => {
                        let within = a != Ordering::Less && b != Ordering::Greater;
                        Some(within != *negated)
                    }
                    _ => None,
                });
            }
            Ok(out)
        }
        // Column / Literal / Negate / Like roots in a tristate context:
        // materialize and apply the row path's as_tristate rule.
        _ => tristate_of_values(eval_values(expr, batch, sel)?),
    }
}

/// Expression shapes whose results are always Bool/NULL — for these,
/// `is_truthy` coincides with tristate `Some(true)`.
fn logical_shape(expr: &BoundExpr) -> bool {
    use BinaryOperator::*;
    match expr {
        BoundExpr::Binary { op, .. } => !matches!(op, Plus | Minus | Multiply | Divide),
        BoundExpr::Not(_)
        | BoundExpr::IsNull { .. }
        | BoundExpr::InList { .. }
        | BoundExpr::Between { .. }
        | BoundExpr::Like { .. } => true,
        BoundExpr::Column(_) | BoundExpr::Literal(_) | BoundExpr::Negate(_) => false,
    }
}

/// One evaluated operand: a borrowed column, a shared literal, or a
/// materialized vector (one value per selection position).
enum Vals<'b, 'a> {
    Col(&'b Column<'a>),
    Lit(&'b Value),
    Owned(Vec<Value>),
}

impl Vals<'_, '_> {
    /// The operand value for selection position `pos` (= row `row` of the
    /// batch).  No heap clone on any variant.
    fn at(&self, pos: usize, row: usize) -> ValueRef<'_> {
        match self {
            Vals::Col(c) => c.value_ref(row),
            Vals::Lit(v) => ValueRef::Ref(v),
            Vals::Owned(vals) => ValueRef::Ref(&vals[pos]),
        }
    }
}

/// Prepare an operand for per-element kernels: columns and literals are
/// borrowed in place, everything else is materialized via [`eval_values`].
fn operand<'b, 'a>(
    expr: &'b BoundExpr,
    batch: &'b ColumnBatch<'a>,
    sel: &[u32],
) -> Result<Vals<'b, 'a>> {
    match expr {
        BoundExpr::Column(i) => Ok(Vals::Col(column(batch, *i)?)),
        BoundExpr::Literal(v) => Ok(Vals::Lit(v)),
        _ => Ok(Vals::Owned(eval_values(expr, batch, sel)?)),
    }
}

fn column<'b, 'a>(batch: &'b ColumnBatch<'a>, i: usize) -> Result<&'b Column<'a>> {
    batch.column(i).ok_or_else(|| {
        BeasError::execution(format!(
            "column #{i} out of bounds for batch of arity {}",
            batch.arity()
        ))
    })
}

fn tristate_to_values(tri: Vec<Option<bool>>) -> Vec<Value> {
    tri.into_iter()
        .map(|t| t.map_or(Value::Null, Value::Bool))
        .collect()
}

/// Fold materialized values through the row path's `as_tristate` rule:
/// NULL ⇒ unknown, Bool ⇒ known, anything else is a type error.
fn tristate_of_values(vals: Vec<Value>) -> Result<Vec<Option<bool>>> {
    vals.into_iter()
        .map(|v| match v {
            Value::Null => Ok(None),
            Value::Bool(b) => Ok(Some(b)),
            other => Err(BeasError::type_err(format!(
                "expected BOOLEAN in logical expression, got {}",
                other.type_name()
            ))),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{evaluate, evaluate_predicate};
    use beas_common::{Date, Row};

    fn date(s: &str) -> Value {
        Value::Date(s.parse::<Date>().unwrap())
    }

    /// Mixed-type rows exercising every kernel edge the differential
    /// harness cares about: -0.0, NaN, Int-valued Float, date-shaped
    /// strings and NULLs.
    fn edge_rows() -> Vec<Row> {
        vec![
            vec![Value::Int(1), Value::Float(0.0), Value::str("2016-07-04")],
            vec![Value::Int(2), Value::Float(-0.0), Value::str("east")],
            vec![Value::Null, Value::Float(f64::NAN), Value::Null],
            vec![Value::Int(4), Value::Null, Value::str("2016-99-99")],
            vec![Value::Int(5), Value::Float(5.0), Value::str("west")],
        ]
    }

    fn all_sel(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    fn col(i: usize) -> BoundExpr {
        BoundExpr::Column(i)
    }

    fn lit(v: Value) -> BoundExpr {
        BoundExpr::Literal(v)
    }

    fn bin(op: BinaryOperator, l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    /// The central obligation: on every covered expression, the kernel
    /// either errors (fallback territory) or matches the row evaluator
    /// value-for-value.  Debug formatting keeps Int/Float distinct and
    /// -0.0 / NaN textually visible.
    fn assert_kernel_matches_rows(expr: &BoundExpr, rows: &[Row]) {
        let arity = rows.first().map_or(0, |r| r.len());
        assert!(covers(expr, arity), "{expr} should be covered");
        let batch = ColumnBatch::from_rows(rows);
        batch.check_invariants().unwrap();
        let sel = all_sel(rows.len());
        let row_results: Vec<_> = rows.iter().map(|r| evaluate(expr, r.as_slice())).collect();
        match eval_values(expr, &batch, &sel) {
            Ok(vals) => {
                for (i, (kernel, row)) in vals.iter().zip(&row_results).enumerate() {
                    let row = row.as_ref().unwrap_or_else(|e| {
                        panic!("{expr}: kernel succeeded but row path errored on row {i}: {e}")
                    });
                    assert_eq!(
                        format!("{kernel:?}"),
                        format!("{row:?}"),
                        "{expr}: row {i} diverged"
                    );
                }
            }
            Err(_) => {
                // Over-erroring is allowed only when some row actually errors
                // under eager evaluation; for these expressions (no IN
                // short-circuit in play) the row path must error somewhere.
                assert!(
                    row_results.iter().any(|r| r.is_err()),
                    "{expr}: kernel errored but every row succeeded"
                );
            }
        }
        // Filter semantics agree with evaluate_predicate wherever the
        // kernel succeeds.
        if let Ok(kept) = filter_sel(expr, &batch, &sel) {
            let expected: Vec<u32> = rows
                .iter()
                .enumerate()
                .filter(|(_, r)| evaluate_predicate(expr, r.as_slice()).unwrap_or(false))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(kept, expected, "{expr}: filter selection diverged");
        }
    }

    #[test]
    fn comparison_kernels_match_row_path() {
        let rows = edge_rows();
        use BinaryOperator::*;
        for op in [Eq, NotEq, Lt, LtEq, Gt, GtEq] {
            // Int column vs Int literal, Float column vs Float literal
            // (NaN operand ⇒ NULL, -0.0 == 0.0), Str column vs str literal,
            // date-shaped string column vs Date literal coercion.
            assert_kernel_matches_rows(&bin(op, col(0), lit(Value::Int(3))), &rows);
            assert_kernel_matches_rows(&bin(op, col(1), lit(Value::Float(0.0))), &rows);
            assert_kernel_matches_rows(&bin(op, col(2), lit(Value::str("east"))), &rows);
            assert_kernel_matches_rows(&bin(op, col(2), lit(date("2016-07-04"))), &rows);
            // Column vs column across the Int/Float families.
            assert_kernel_matches_rows(&bin(op, col(0), col(1)), &rows);
            // Literal on the left.
            assert_kernel_matches_rows(&bin(op, lit(Value::Float(-0.0)), col(1)), &rows);
        }
    }

    #[test]
    fn logic_null_and_range_kernels_match_row_path() {
        let rows = edge_rows();
        use BinaryOperator::*;
        let cmp = |o, l, r| bin(o, l, r);
        assert_kernel_matches_rows(
            &bin(
                And,
                cmp(Gt, col(0), lit(Value::Int(1))),
                cmp(Lt, col(1), lit(Value::Float(1.0))),
            ),
            &rows,
        );
        assert_kernel_matches_rows(
            &bin(
                Or,
                cmp(Eq, col(2), lit(Value::str("east"))),
                cmp(Eq, col(0), lit(Value::Int(5))),
            ),
            &rows,
        );
        assert_kernel_matches_rows(&BoundExpr::Not(Box::new(cmp(Eq, col(0), col(1)))), &rows);
        for negated in [false, true] {
            assert_kernel_matches_rows(
                &BoundExpr::IsNull {
                    expr: Box::new(col(1)),
                    negated,
                },
                &rows,
            );
            assert_kernel_matches_rows(
                &BoundExpr::Between {
                    expr: Box::new(col(0)),
                    low: Box::new(lit(Value::Int(2))),
                    high: Box::new(lit(Value::Float(4.0))),
                    negated,
                },
                &rows,
            );
            assert_kernel_matches_rows(
                &BoundExpr::InList {
                    expr: Box::new(col(2)),
                    list: vec![
                        lit(Value::str("east")),
                        lit(date("2016-07-04")),
                        lit(Value::Null),
                    ],
                    negated,
                },
                &rows,
            );
        }
    }

    #[test]
    fn arithmetic_and_negate_kernels_match_row_path() {
        let rows = edge_rows();
        use BinaryOperator::*;
        for op in [Plus, Minus, Multiply, Divide] {
            assert_kernel_matches_rows(&bin(op, col(0), col(1)), &rows);
            assert_kernel_matches_rows(&bin(op, col(1), lit(Value::Float(2.0))), &rows);
        }
        assert_kernel_matches_rows(&BoundExpr::Negate(Box::new(col(1))), &rows);
        // Projection of the raw columns: Int stays Int, -0.0 keeps its
        // sign, NULL slots come back as NULL.
        assert_kernel_matches_rows(&col(0), &rows);
        assert_kernel_matches_rows(&col(1), &rows);
        assert_kernel_matches_rows(&col(2), &rows);
    }

    #[test]
    fn type_errors_surface_as_kernel_errors() {
        let rows = edge_rows();
        let batch = ColumnBatch::from_rows(&rows);
        let sel = all_sel(rows.len());
        // Str vs Int comparison is a type error on row 2 ("east" vs 3).
        let e = bin(BinaryOperator::Gt, col(2), lit(Value::Int(3)));
        assert!(eval_values(&e, &batch, &sel).is_err());
        assert!(filter_sel(&e, &batch, &sel).is_err());
        // AND over a non-boolean operand errors like as_tristate.
        let e = bin(BinaryOperator::And, col(0), lit(Value::Bool(true)));
        assert!(eval_tristate(&e, &batch, &sel).is_err());
    }

    #[test]
    fn like_and_out_of_bounds_are_uncovered() {
        let like = BoundExpr::Like {
            expr: Box::new(col(2)),
            pattern: Box::new(lit(Value::str("e%"))),
            negated: false,
        };
        assert!(!covers(&like, 3));
        assert!(covers(&col(2), 3));
        assert!(!covers(&col(3), 3));
        assert!(!covers(&bin(BinaryOperator::Eq, col(0), col(7)), 3));
    }

    #[test]
    fn selection_vectors_compose() {
        // Chained filters reuse the shrinking selection vector.
        let rows = edge_rows();
        let batch = ColumnBatch::from_rows(&rows);
        let sel = all_sel(rows.len());
        let not_null = BoundExpr::IsNull {
            expr: Box::new(col(0)),
            negated: true,
        };
        let sel = filter_sel(&not_null, &batch, &sel).unwrap();
        assert_eq!(sel, vec![0, 1, 3, 4]);
        let big = bin(BinaryOperator::GtEq, col(0), lit(Value::Int(2)));
        let sel = filter_sel(&big, &batch, &sel).unwrap();
        assert_eq!(sel, vec![1, 3, 4]);
        let vals = eval_values(&col(2), &batch, &sel).unwrap();
        assert_eq!(
            vals,
            vec![
                Value::str("east"),
                Value::str("2016-99-99"),
                Value::str("west")
            ]
        );
    }
}
