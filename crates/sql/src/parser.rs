//! Recursive-descent parser for the supported SQL fragment.

use crate::ast::*;
use crate::lexer::{tokenize, Keyword, Token};
use beas_common::{BeasError, Result};

/// The SQL parser.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Parse a single SQL statement.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    Parser::new(sql)?.parse_statement()
}

/// Parse a `SELECT` statement (convenience wrapper).
pub fn parse_select(sql: &str) -> Result<SelectStatement> {
    match parse_statement(sql)? {
        Statement::Select(s) => Ok(s),
    }
}

impl Parser {
    /// Create a parser over the given SQL text.
    pub fn new(sql: &str) -> Result<Self> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        self.tokens.get(self.pos).unwrap_or(&Token::Eof)
    }

    fn peek_ahead(&self, n: usize) -> &Token {
        self.tokens.get(self.pos + n).unwrap_or(&Token::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, expected: &Token) -> Result<()> {
        let t = self.bump();
        if &t == expected {
            Ok(())
        } else {
            Err(BeasError::parse(format!("expected {expected}, found {t}")))
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<()> {
        self.expect(&Token::Keyword(kw))
    }

    fn consume_keyword(&mut self, kw: Keyword) -> bool {
        if self.peek() == &Token::Keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn consume(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            other => Err(BeasError::parse(format!(
                "expected identifier, found {other}"
            ))),
        }
    }

    /// Parse a top-level statement (currently only `SELECT`).
    pub fn parse_statement(&mut self) -> Result<Statement> {
        let stmt = match self.peek() {
            Token::Keyword(Keyword::Select) => Statement::Select(self.parse_select_statement()?),
            other => return Err(BeasError::parse(format!("expected SELECT, found {other}"))),
        };
        // optional trailing semicolon
        self.consume(&Token::Semicolon);
        if self.peek() != &Token::Eof {
            return Err(BeasError::parse(format!(
                "unexpected trailing input starting at {}",
                self.peek()
            )));
        }
        Ok(stmt)
    }

    fn parse_select_statement(&mut self) -> Result<SelectStatement> {
        self.expect_keyword(Keyword::Select)?;
        let distinct = self.consume_keyword(Keyword::Distinct);
        let projection = self.parse_projection()?;

        let mut from = Vec::new();
        let mut joins = Vec::new();
        if self.consume_keyword(Keyword::From) {
            from.push(self.parse_table_ref()?);
            loop {
                if self.consume(&Token::Comma) {
                    from.push(self.parse_table_ref()?);
                } else if self.peek() == &Token::Keyword(Keyword::Join)
                    || self.peek() == &Token::Keyword(Keyword::Inner)
                {
                    self.consume_keyword(Keyword::Inner);
                    self.expect_keyword(Keyword::Join)?;
                    let table = self.parse_table_ref()?;
                    self.expect_keyword(Keyword::On)?;
                    let on = self.parse_expr()?;
                    joins.push(JoinClause { table, on });
                } else {
                    break;
                }
            }
        }

        let selection = if self.consume_keyword(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.consume_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.consume(&Token::Comma) {
                    break;
                }
            }
        }

        let having = if self.consume_keyword(Keyword::Having) {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.consume_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            loop {
                let expr = self.parse_expr()?;
                let asc = if self.consume_keyword(Keyword::Desc) {
                    false
                } else {
                    self.consume_keyword(Keyword::Asc);
                    true
                };
                order_by.push(OrderByItem { expr, asc });
                if !self.consume(&Token::Comma) {
                    break;
                }
            }
        }

        let limit = if self.consume_keyword(Keyword::Limit) {
            match self.bump() {
                Token::Int(n) if n >= 0 => Some(n as u64),
                other => {
                    return Err(BeasError::parse(format!(
                        "expected non-negative integer after LIMIT, found {other}"
                    )))
                }
            }
        } else {
            None
        };

        Ok(SelectStatement {
            distinct,
            projection,
            from,
            joins,
            selection,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn parse_projection(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            if self.consume(&Token::Star) {
                items.push(SelectItem::Wildcard);
            } else if matches!(self.peek(), Token::Ident(_))
                && self.peek_ahead(1) == &Token::Dot
                && self.peek_ahead(2) == &Token::Star
            {
                let t = self.expect_ident()?;
                self.bump(); // dot
                self.bump(); // star
                items.push(SelectItem::QualifiedWildcard(t));
            } else {
                let expr = self.parse_expr()?;
                let alias = if self.consume_keyword(Keyword::As) {
                    Some(self.expect_ident()?)
                } else if let Token::Ident(_) = self.peek() {
                    // bare alias (`SELECT a b FROM ...`) is intentionally not
                    // supported to keep the grammar unambiguous with comma
                    // joins; require AS.
                    None
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.consume(&Token::Comma) {
                break;
            }
        }
        if items.is_empty() {
            return Err(BeasError::parse("empty projection list"));
        }
        Ok(items)
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let name = self.expect_ident()?;
        let alias = if self.consume_keyword(Keyword::As) {
            Some(self.expect_ident()?)
        } else if let Token::Ident(_) = self.peek() {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    /// Parse an expression (public so tests can parse expressions directly).
    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.consume_keyword(Keyword::Or) {
            let right = self.parse_and()?;
            left = Expr::BinaryOp {
                left: Box::new(left),
                op: BinaryOperator::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.consume_keyword(Keyword::And) {
            let right = self.parse_not()?;
            left = Expr::BinaryOp {
                left: Box::new(left),
                op: BinaryOperator::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.consume_keyword(Keyword::Not) {
            let expr = self.parse_not()?;
            Ok(Expr::UnaryOp {
                op: UnaryOperator::Not,
                expr: Box::new(expr),
            })
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;

        // postfix predicates: IS [NOT] NULL, [NOT] IN, [NOT] BETWEEN, [NOT] LIKE
        if self.consume_keyword(Keyword::Is) {
            let negated = self.consume_keyword(Keyword::Not);
            self.expect_keyword(Keyword::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = if self.peek() == &Token::Keyword(Keyword::Not)
            && matches!(
                self.peek_ahead(1),
                Token::Keyword(Keyword::In)
                    | Token::Keyword(Keyword::Between)
                    | Token::Keyword(Keyword::Like)
            ) {
            self.bump();
            true
        } else {
            false
        };
        if self.consume_keyword(Keyword::In) {
            self.expect(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_additive()?);
                if !self.consume(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.consume_keyword(Keyword::Between) {
            let low = self.parse_additive()?;
            self.expect_keyword(Keyword::And)?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.consume_keyword(Keyword::Like) {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(BeasError::parse(
                "expected IN, BETWEEN or LIKE after NOT in predicate position",
            ));
        }

        let op = match self.peek() {
            Token::Eq => Some(BinaryOperator::Eq),
            Token::NotEq => Some(BinaryOperator::NotEq),
            Token::Lt => Some(BinaryOperator::Lt),
            Token::LtEq => Some(BinaryOperator::LtEq),
            Token::Gt => Some(BinaryOperator::Gt),
            Token::GtEq => Some(BinaryOperator::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.parse_additive()?;
            return Ok(Expr::BinaryOp {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinaryOperator::Plus,
                Token::Minus => BinaryOperator::Minus,
                _ => break,
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = Expr::BinaryOp {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinaryOperator::Multiply,
                Token::Slash => BinaryOperator::Divide,
                _ => break,
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::BinaryOp {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.consume(&Token::Minus) {
            let expr = self.parse_unary()?;
            // fold negative numeric literals immediately
            return Ok(match expr {
                Expr::Literal(Literal::Int(i)) => Expr::Literal(Literal::Int(-i)),
                Expr::Literal(Literal::Float(x)) => Expr::Literal(Literal::Float(-x)),
                e => Expr::UnaryOp {
                    op: UnaryOperator::Minus,
                    expr: Box::new(e),
                },
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Token::Int(i) => Ok(Expr::Literal(Literal::Int(i))),
            Token::Float(x) => Ok(Expr::Literal(Literal::Float(x))),
            Token::Str(s) => Ok(Expr::Literal(Literal::Str(s))),
            Token::Keyword(Keyword::Null) => Ok(Expr::Literal(Literal::Null)),
            Token::Keyword(Keyword::True) => Ok(Expr::Literal(Literal::Bool(true))),
            Token::Keyword(Keyword::False) => Ok(Expr::Literal(Literal::Bool(false))),
            Token::LParen => {
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Keyword(kw)
                if matches!(
                    kw,
                    Keyword::Count | Keyword::Sum | Keyword::Avg | Keyword::Min | Keyword::Max
                ) =>
            {
                self.parse_function_call(kw.as_str().to_string())
            }
            Token::Ident(name) => {
                if self.peek() == &Token::Dot {
                    self.bump();
                    let col = match self.bump() {
                        Token::Ident(c) => c,
                        other => {
                            return Err(BeasError::parse(format!(
                                "expected column name after `{name}.`, found {other}"
                            )))
                        }
                    };
                    Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    })
                } else if self.peek() == &Token::LParen {
                    self.parse_function_call(name.to_ascii_uppercase())
                } else {
                    Ok(Expr::Column { table: None, name })
                }
            }
            other => Err(BeasError::parse(format!(
                "unexpected token {other} in expression"
            ))),
        }
    }

    fn parse_function_call(&mut self, name: String) -> Result<Expr> {
        self.expect(&Token::LParen)?;
        if self.consume(&Token::Star) {
            self.expect(&Token::RParen)?;
            return Ok(Expr::Function {
                name,
                args: vec![],
                distinct: false,
                wildcard: true,
            });
        }
        let distinct = self.consume_keyword(Keyword::Distinct);
        let mut args = Vec::new();
        if self.peek() != &Token::RParen {
            loop {
                args.push(self.parse_expr()?);
                if !self.consume(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Expr::Function {
            name,
            args,
            distinct,
            wildcard: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_example2_query() {
        // The query of Example 2 in the paper.
        let sql = "
            select call.region
            from call, package, business
            where business.type = 't0' and business.region = 'r0' and
                  business.pnum = call.pnum and call.date = '2016-07-04' and
                  call.pnum = package.pnum and package.year = 2016
                  and package.start_month <= 7 and package.end_month >= 7
                  and package.pid = 42";
        let stmt = parse_select(sql).unwrap();
        assert_eq!(stmt.from.len(), 3);
        assert_eq!(stmt.projection.len(), 1);
        assert!(stmt.selection.is_some());
        assert!(!stmt.distinct);
    }

    #[test]
    fn parse_aggregates_group_by_having() {
        let sql = "SELECT region, COUNT(*), SUM(duration) AS total \
                   FROM call GROUP BY region HAVING COUNT(*) > 10 ORDER BY total DESC LIMIT 5";
        let stmt = parse_select(sql).unwrap();
        assert_eq!(stmt.projection.len(), 3);
        assert_eq!(stmt.group_by.len(), 1);
        assert!(stmt.having.is_some());
        assert_eq!(stmt.order_by.len(), 1);
        assert!(!stmt.order_by[0].asc);
        assert_eq!(stmt.limit, Some(5));
        match &stmt.projection[2] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("total")),
            _ => panic!("expected aliased expr"),
        }
    }

    #[test]
    fn parse_joins_and_aliases() {
        let sql =
            "SELECT c.region FROM call c JOIN business b ON b.pnum = c.pnum WHERE b.type = 'bank'";
        let stmt = parse_select(sql).unwrap();
        assert_eq!(stmt.from.len(), 1);
        assert_eq!(stmt.joins.len(), 1);
        assert_eq!(stmt.joins[0].table.name, "business");
        assert_eq!(stmt.joins[0].table.alias.as_deref(), Some("b"));
    }

    #[test]
    fn parse_in_between_like_isnull() {
        let sql = "SELECT a FROM t WHERE a IN (1, 2, 3) AND b BETWEEN 1 AND 10 \
                   AND c LIKE 'ab%' AND d IS NOT NULL AND e NOT IN (4) AND f NOT BETWEEN 0 AND 1";
        let stmt = parse_select(sql).unwrap();
        let w = stmt.selection.unwrap().to_string();
        assert!(w.contains("IN (1, 2, 3)"));
        assert!(w.contains("BETWEEN 1 AND 10"));
        assert!(w.contains("LIKE 'ab%'"));
        assert!(w.contains("IS NOT NULL"));
        assert!(w.contains("NOT IN (4)"));
        assert!(w.contains("NOT BETWEEN 0 AND 1"));
    }

    #[test]
    fn parse_arithmetic_precedence() {
        let stmt = parse_select("SELECT a + b * 2 FROM t").unwrap();
        match &stmt.projection[0] {
            SelectItem::Expr { expr, .. } => {
                assert_eq!(expr.to_string(), "(a + (b * 2))");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_boolean_precedence() {
        let stmt = parse_select("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        // AND binds tighter than OR
        assert_eq!(
            stmt.selection.unwrap().to_string(),
            "((a = 1) OR ((b = 2) AND (c = 3)))"
        );
    }

    #[test]
    fn parse_not_and_negative_literals() {
        let stmt = parse_select("SELECT a FROM t WHERE NOT a = -5").unwrap();
        assert_eq!(stmt.selection.unwrap().to_string(), "(NOT (a = -5))");
    }

    #[test]
    fn parse_distinct_and_wildcards() {
        let stmt = parse_select("SELECT DISTINCT * FROM t").unwrap();
        assert!(stmt.distinct);
        assert_eq!(stmt.projection, vec![SelectItem::Wildcard]);
        let stmt2 = parse_select("SELECT t.* FROM t").unwrap();
        assert_eq!(
            stmt2.projection,
            vec![SelectItem::QualifiedWildcard("t".into())]
        );
    }

    #[test]
    fn parse_count_distinct() {
        let stmt = parse_select("SELECT COUNT(DISTINCT pnum) FROM call").unwrap();
        match &stmt.projection[0] {
            SelectItem::Expr {
                expr: Expr::Function { distinct, name, .. },
                ..
            } => {
                assert!(*distinct);
                assert_eq!(name, "COUNT");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_select("SELECT").is_err());
        assert!(parse_select("SELECT FROM t").is_err());
        assert!(parse_select("SELECT a FROM t WHERE").is_err());
        assert!(parse_select("SELECT a FROM t LIMIT x").is_err());
        assert!(parse_select("INSERT INTO t VALUES (1)").is_err());
        assert!(parse_select("SELECT a FROM t extra garbage ,").is_err());
        assert!(parse_select("SELECT a FROM t WHERE a NOT 5").is_err());
    }

    #[test]
    fn round_trip_display_reparses() {
        let sql = "SELECT DISTINCT c.region, COUNT(*) AS n FROM call c, business b \
                   WHERE b.pnum = c.pnum AND b.type = 'bank' AND c.date BETWEEN '2016-01-01' AND '2016-12-31' \
                   GROUP BY c.region HAVING COUNT(*) > 2 ORDER BY n DESC LIMIT 3";
        let stmt = parse_select(sql).unwrap();
        let rendered = stmt.to_string();
        let reparsed = parse_select(&rendered).unwrap();
        assert_eq!(stmt, reparsed);
    }

    #[test]
    fn semicolon_terminated() {
        assert!(parse_select("SELECT a FROM t;").is_ok());
        assert!(parse_select("SELECT a FROM t; SELECT b FROM u").is_err());
    }
}
