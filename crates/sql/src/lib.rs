#![forbid(unsafe_code)]
//! # beas-sql
//!
//! SQL front end for the BEAS workspace: a hand-written lexer, a
//! recursive-descent parser for the SPJ + aggregate fragment the paper
//! targets, a binder that resolves names against a catalog, and an
//! expression evaluator shared by both the baseline engine and the bounded
//! plan executor.
//!
//! Supported SQL (the fragment exercised by the TLC benchmark and the demo):
//!
//! * `SELECT [DISTINCT] <exprs | *> FROM t1 [alias], t2 [alias], ... `
//!   (comma joins) and explicit `JOIN ... ON` / `INNER JOIN ... ON`;
//! * `WHERE` with `AND`/`OR`/`NOT`, comparisons, `BETWEEN`, `IN (...)`,
//!   `IS [NOT] NULL`, `LIKE`;
//! * aggregates `COUNT(*)`, `COUNT`, `SUM`, `AVG`, `MIN`, `MAX`
//!   (optionally `DISTINCT`), `GROUP BY`, `HAVING`;
//! * `ORDER BY ... [ASC|DESC]`, `LIMIT n`.

pub mod analysis;
pub mod ast;
pub mod binder;
pub mod columnar;
pub mod expr;
pub mod lexer;
pub mod parser;

pub use analysis::{classify_conjuncts, split_conjuncts, ConjunctClass, QueryShape};
pub use ast::{
    BinaryOperator, Expr, JoinClause, Literal, OrderByItem, SelectItem, SelectStatement, Statement,
    TableRef, UnaryOperator,
};
pub use binder::{Binder, BoundAggregate, BoundQuery, BoundTable, SchemaProvider};
pub use expr::{evaluate, evaluate_predicate, Accumulator, AggregateFunction, BoundExpr};
pub use lexer::{Keyword, Lexer, Token};
pub use parser::{parse_select, parse_statement, Parser};
