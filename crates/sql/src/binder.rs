//! Name resolution: turns a parsed [`SelectStatement`] into a [`BoundQuery`]
//! whose expressions reference column offsets of a concrete input schema.
//!
//! Both engines consume the same `BoundQuery`:
//!
//! * the baseline engine plans scans/joins over the flat input schema;
//! * the BEAS planner additionally inspects the per-table structure
//!   ([`BoundTable`]) and the original AST to reason about access constraints.

use crate::ast::{Expr, Literal, SelectItem, SelectStatement};
use crate::expr::{AggregateFunction, BoundExpr};
use beas_common::{BeasError, DataType, Field, Result, Schema, TableSchema, Value};

/// Source of table schemas; implemented by the storage catalog.
pub trait SchemaProvider {
    /// Schema of table `name`, if it exists.
    fn table_schema(&self, name: &str) -> Option<TableSchema>;
}

impl SchemaProvider for std::collections::HashMap<String, TableSchema> {
    fn table_schema(&self, name: &str) -> Option<TableSchema> {
        self.get(&name.to_ascii_lowercase()).cloned()
    }
}

/// One table factor of the bound query.
#[derive(Debug, Clone)]
pub struct BoundTable {
    /// Alias used in the query (defaults to the table name).
    pub alias: String,
    /// Underlying base-table name.
    pub table: String,
    /// Schema of the base table.
    pub schema: TableSchema,
    /// Offset of this table's first column in the flat input schema.
    pub offset: usize,
}

impl BoundTable {
    /// Index in the flat input schema of column `name` of this table.
    pub fn input_index(&self, name: &str) -> Option<usize> {
        self.schema.column_index(name).map(|i| self.offset + i)
    }
}

/// A bound aggregate call.
#[derive(Debug, Clone)]
pub struct BoundAggregate {
    /// The aggregate function.
    pub func: AggregateFunction,
    /// Argument expression over the input schema; `None` for `COUNT(*)`.
    pub arg: Option<BoundExpr>,
    /// `DISTINCT` inside the call.
    pub distinct: bool,
    /// Canonical display string of the original call (used for matching
    /// references in the projection / HAVING).
    pub display: String,
    /// Result type.
    pub output_type: DataType,
}

/// A fully bound query.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    /// The original AST (kept for the BEAS coverage checker and for display).
    pub ast: SelectStatement,
    /// Table factors in FROM/JOIN order.
    pub tables: Vec<BoundTable>,
    /// Flat schema: concatenation of all table schemas.
    pub input_schema: Schema,
    /// WHERE predicate plus all JOIN ON conditions, over `input_schema`.
    pub filter: Option<BoundExpr>,
    /// Whether the query aggregates (has aggregates or GROUP BY).
    pub is_aggregate: bool,
    /// GROUP BY expressions over `input_schema`.
    pub group_by: Vec<BoundExpr>,
    /// Aggregate calls over `input_schema`.
    pub aggregates: Vec<BoundAggregate>,
    /// Schema after aggregation: group keys followed by aggregate results.
    pub agg_schema: Schema,
    /// Output expressions with their names.  Bound over `input_schema` for
    /// non-aggregate queries, over `agg_schema` otherwise.
    pub output: Vec<(BoundExpr, String)>,
    /// HAVING predicate over `agg_schema`.
    pub having: Option<BoundExpr>,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// ORDER BY as (output column index, ascending).
    pub order_by: Vec<(usize, bool)>,
    /// LIMIT.
    pub limit: Option<u64>,
    /// Schema of the final output.
    pub output_schema: Schema,
}

impl BoundQuery {
    /// The bound table with alias `alias`, if any.
    pub fn table_by_alias(&self, alias: &str) -> Option<&BoundTable> {
        let alias = alias.to_ascii_lowercase();
        self.tables.iter().find(|t| t.alias == alias)
    }
}

/// The binder.
pub struct Binder<'a> {
    provider: &'a dyn SchemaProvider,
}

impl<'a> Binder<'a> {
    /// Create a binder over a schema provider (usually the storage catalog).
    pub fn new(provider: &'a dyn SchemaProvider) -> Self {
        Binder { provider }
    }

    /// Bind a parsed SELECT statement.
    pub fn bind(&self, stmt: &SelectStatement) -> Result<BoundQuery> {
        if stmt.from.is_empty() {
            return Err(BeasError::unsupported(
                "SELECT without FROM is not supported",
            ));
        }

        // 1. Resolve table factors and build the flat input schema.
        let mut tables = Vec::new();
        let mut input_schema = Schema::empty();
        let mut all_refs: Vec<(crate::ast::TableRef, Option<Expr>)> =
            stmt.from.iter().map(|t| (t.clone(), None)).collect();
        for j in &stmt.joins {
            all_refs.push((j.table.clone(), Some(j.on.clone())));
        }
        let mut join_conditions = Vec::new();
        for (tref, on) in &all_refs {
            let name = tref.name.to_ascii_lowercase();
            let schema = self
                .provider
                .table_schema(&name)
                .ok_or_else(|| BeasError::binding(format!("unknown table {name:?}")))?;
            let alias = tref.effective_alias().to_ascii_lowercase();
            if tables.iter().any(|t: &BoundTable| t.alias == alias) {
                return Err(BeasError::binding(format!(
                    "duplicate table alias {alias:?}"
                )));
            }
            let offset = input_schema.len();
            input_schema = input_schema.join(&Schema::from_table(&alias, &schema));
            tables.push(BoundTable {
                alias,
                table: name,
                schema,
                offset,
            });
            if let Some(on) = on {
                join_conditions.push(on.clone());
            }
        }

        // 2. Bind WHERE + JOIN ON conditions.
        let mut filter_ast = stmt.selection.clone();
        for on in join_conditions {
            filter_ast = Some(match filter_ast {
                Some(f) => Expr::and(f, on),
                None => on,
            });
        }
        let filter = match &filter_ast {
            Some(e) => {
                if e.contains_aggregate() {
                    return Err(BeasError::binding(
                        "aggregate functions are not allowed in WHERE",
                    ));
                }
                Some(self.bind_scalar(e, &input_schema)?)
            }
            None => None,
        };

        // 3. Expand projection wildcards.
        let mut proj_items: Vec<(Expr, Option<String>)> = Vec::new();
        for item in &stmt.projection {
            match item {
                SelectItem::Wildcard => {
                    for t in &tables {
                        for c in &t.schema.columns {
                            proj_items.push((Expr::qcol(&t.alias, &c.name), None));
                        }
                    }
                }
                SelectItem::QualifiedWildcard(alias) => {
                    let alias = alias.to_ascii_lowercase();
                    let t = tables
                        .iter()
                        .find(|t| t.alias == alias)
                        .ok_or_else(|| BeasError::binding(format!("unknown alias {alias:?}")))?;
                    for c in &t.schema.columns {
                        proj_items.push((Expr::qcol(&t.alias, &c.name), None));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    proj_items.push((expr.clone(), alias.clone()));
                }
            }
        }

        // 4. Collect aggregates from the projection and HAVING.
        let mut agg_calls: Vec<Expr> = Vec::new();
        for (e, _) in &proj_items {
            collect_aggregates(e, &mut agg_calls);
        }
        if let Some(h) = &stmt.having {
            collect_aggregates(h, &mut agg_calls);
        }
        let is_aggregate = !agg_calls.is_empty() || !stmt.group_by.is_empty();

        if !is_aggregate && stmt.having.is_some() {
            return Err(BeasError::binding(
                "HAVING requires GROUP BY or aggregate functions",
            ));
        }

        // 5. Bind GROUP BY and aggregates; build the post-aggregation schema.
        let mut group_by = Vec::new();
        let mut group_fields = Vec::new();
        for g in &stmt.group_by {
            let bound = self.bind_scalar(g, &input_schema)?;
            let field = match &bound {
                BoundExpr::Column(i) => input_schema.field(*i).clone(),
                _ => Field::derived(
                    g.to_string().to_ascii_lowercase(),
                    infer_type(&bound, &input_schema),
                ),
            };
            group_fields.push(field);
            group_by.push(bound);
        }

        let mut aggregates: Vec<BoundAggregate> = Vec::new();
        let mut agg_fields = Vec::new();
        for call in &agg_calls {
            let display = call.to_string();
            if aggregates.iter().any(|a| a.display == display) {
                continue;
            }
            let (func, arg, distinct) = match call {
                Expr::Function {
                    name,
                    args,
                    distinct,
                    wildcard,
                } => {
                    let func = AggregateFunction::from_name(name).ok_or_else(|| {
                        BeasError::unsupported(format!("unknown function {name}"))
                    })?;
                    let arg = if *wildcard {
                        if func != AggregateFunction::Count {
                            return Err(BeasError::binding(format!("{func}(*) is not valid")));
                        }
                        None
                    } else {
                        if args.len() != 1 {
                            return Err(BeasError::binding(format!(
                                "{func} takes exactly one argument"
                            )));
                        }
                        if args[0].contains_aggregate() {
                            return Err(BeasError::binding("nested aggregates are not allowed"));
                        }
                        Some(self.bind_scalar(&args[0], &input_schema)?)
                    };
                    (func, arg, *distinct)
                }
                _ => unreachable!("collect_aggregates only returns Function nodes"),
            };
            let input_type = arg.as_ref().map(|a| infer_type(a, &input_schema));
            let output_type = func.output_type(input_type);
            agg_fields.push(Field::derived(display.to_ascii_lowercase(), output_type));
            aggregates.push(BoundAggregate {
                func,
                arg,
                distinct,
                display,
                output_type,
            });
        }

        let agg_schema = Schema::new(
            group_fields
                .iter()
                .cloned()
                .chain(agg_fields.iter().cloned())
                .collect(),
        );

        // 6. Bind output expressions and HAVING.
        let mut output = Vec::new();
        let mut output_fields = Vec::new();
        for (e, alias) in &proj_items {
            let (bound, field) = if is_aggregate {
                let bound = self.bind_over_aggregation(
                    e,
                    &input_schema,
                    &stmt.group_by,
                    &group_by,
                    &aggregates,
                )?;
                let dt = infer_type(&bound, &agg_schema);
                let field = match (&bound, e) {
                    (BoundExpr::Column(i), _) => agg_schema.field(*i).clone(),
                    _ => Field::derived(default_name(e), dt),
                };
                (bound, field)
            } else {
                let bound = self.bind_scalar(e, &input_schema)?;
                let dt = infer_type(&bound, &input_schema);
                let field = match &bound {
                    BoundExpr::Column(i) => input_schema.field(*i).clone(),
                    _ => Field::derived(default_name(e), dt),
                };
                (bound, field)
            };
            let name = alias
                .clone()
                .map(|a| a.to_ascii_lowercase())
                .unwrap_or_else(|| field.name.clone());
            output_fields.push(Field {
                name: name.clone(),
                data_type: field.data_type,
                table: field.table.clone(),
            });
            output.push((bound, name));
        }

        let having = match &stmt.having {
            Some(h) => Some(self.bind_over_aggregation(
                h,
                &input_schema,
                &stmt.group_by,
                &group_by,
                &aggregates,
            )?),
            None => None,
        };

        let output_schema = Schema::new(output_fields);

        // 7. ORDER BY: resolve to output column indices.
        let mut order_by = Vec::new();
        for item in &stmt.order_by {
            let idx = self.resolve_order_by(
                &item.expr,
                &output,
                &output_schema,
                is_aggregate,
                &input_schema,
                &stmt.group_by,
                &group_by,
                &aggregates,
            )?;
            order_by.push((idx, item.asc));
        }

        Ok(BoundQuery {
            ast: stmt.clone(),
            tables,
            input_schema,
            filter,
            is_aggregate,
            group_by,
            aggregates,
            agg_schema,
            output,
            having,
            distinct: stmt.distinct,
            order_by,
            limit: stmt.limit,
            output_schema,
        })
    }

    /// Bind a scalar (non-aggregate) expression over `schema`.
    pub fn bind_scalar(&self, expr: &Expr, schema: &Schema) -> Result<BoundExpr> {
        Ok(match expr {
            Expr::Column { table, name } => {
                BoundExpr::Column(schema.resolve(table.as_deref(), name)?)
            }
            Expr::Literal(l) => BoundExpr::Literal(literal_to_value(l)),
            Expr::BinaryOp { left, op, right } => BoundExpr::Binary {
                op: *op,
                left: Box::new(self.bind_scalar(left, schema)?),
                right: Box::new(self.bind_scalar(right, schema)?),
            },
            Expr::UnaryOp { op, expr } => match op {
                crate::ast::UnaryOperator::Not => {
                    BoundExpr::Not(Box::new(self.bind_scalar(expr, schema)?))
                }
                crate::ast::UnaryOperator::Minus => {
                    BoundExpr::Negate(Box::new(self.bind_scalar(expr, schema)?))
                }
            },
            Expr::IsNull { expr, negated } => BoundExpr::IsNull {
                expr: Box::new(self.bind_scalar(expr, schema)?),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => BoundExpr::InList {
                expr: Box::new(self.bind_scalar(expr, schema)?),
                list: list
                    .iter()
                    .map(|e| self.bind_scalar(e, schema))
                    .collect::<Result<Vec<_>>>()?,
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => BoundExpr::Between {
                expr: Box::new(self.bind_scalar(expr, schema)?),
                low: Box::new(self.bind_scalar(low, schema)?),
                high: Box::new(self.bind_scalar(high, schema)?),
                negated: *negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => BoundExpr::Like {
                expr: Box::new(self.bind_scalar(expr, schema)?),
                pattern: Box::new(self.bind_scalar(pattern, schema)?),
                negated: *negated,
            },
            Expr::Function { name, .. } => {
                return Err(BeasError::binding(format!(
                    "aggregate/function {name} is not allowed in this context"
                )))
            }
        })
    }

    /// Bind an expression appearing after aggregation (projection or HAVING of
    /// an aggregate query) over the post-aggregation schema.
    // the arguments are the five aggregation contexts resolution threads
    // through recursion; a context struct would be built and torn down per
    // bound expression for no reuse
    #[allow(clippy::too_many_arguments)]
    fn bind_over_aggregation(
        &self,
        expr: &Expr,
        input_schema: &Schema,
        group_by_ast: &[Expr],
        group_by: &[BoundExpr],
        aggregates: &[BoundAggregate],
    ) -> Result<BoundExpr> {
        // An aggregate call maps to its slot after the group keys.
        if let Expr::Function { .. } = expr {
            let display = expr.to_string();
            if let Some(idx) = aggregates.iter().position(|a| a.display == display) {
                return Ok(BoundExpr::Column(group_by.len() + idx));
            }
            return Err(BeasError::binding(format!(
                "aggregate {display} not found (internal binder error)"
            )));
        }
        // A group-by expression (most commonly a bare column) maps to its key slot.
        for (i, g) in group_by_ast.iter().enumerate() {
            if exprs_equivalent(expr, g) {
                return Ok(BoundExpr::Column(i));
            }
        }
        match expr {
            Expr::Column { table, name } => {
                // Column not in GROUP BY: invalid in an aggregate query.
                let qualified = match table {
                    Some(t) => format!("{t}.{name}"),
                    None => name.clone(),
                };
                // Make sure the reference at least resolves, to give the most
                // useful error.
                input_schema.resolve(table.as_deref(), name)?;
                Err(BeasError::binding(format!(
                    "column {qualified} must appear in GROUP BY or be used in an aggregate"
                )))
            }
            Expr::Literal(l) => Ok(BoundExpr::Literal(literal_to_value(l))),
            Expr::BinaryOp { left, op, right } => Ok(BoundExpr::Binary {
                op: *op,
                left: Box::new(self.bind_over_aggregation(
                    left,
                    input_schema,
                    group_by_ast,
                    group_by,
                    aggregates,
                )?),
                right: Box::new(self.bind_over_aggregation(
                    right,
                    input_schema,
                    group_by_ast,
                    group_by,
                    aggregates,
                )?),
            }),
            Expr::UnaryOp { op, expr } => {
                let inner = self.bind_over_aggregation(
                    expr,
                    input_schema,
                    group_by_ast,
                    group_by,
                    aggregates,
                )?;
                Ok(match op {
                    crate::ast::UnaryOperator::Not => BoundExpr::Not(Box::new(inner)),
                    crate::ast::UnaryOperator::Minus => BoundExpr::Negate(Box::new(inner)),
                })
            }
            Expr::IsNull { expr, negated } => Ok(BoundExpr::IsNull {
                expr: Box::new(self.bind_over_aggregation(
                    expr,
                    input_schema,
                    group_by_ast,
                    group_by,
                    aggregates,
                )?),
                negated: *negated,
            }),
            Expr::InList {
                expr,
                list,
                negated,
            } => Ok(BoundExpr::InList {
                expr: Box::new(self.bind_over_aggregation(
                    expr,
                    input_schema,
                    group_by_ast,
                    group_by,
                    aggregates,
                )?),
                list: list
                    .iter()
                    .map(|e| {
                        self.bind_over_aggregation(
                            e,
                            input_schema,
                            group_by_ast,
                            group_by,
                            aggregates,
                        )
                    })
                    .collect::<Result<Vec<_>>>()?,
                negated: *negated,
            }),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Ok(BoundExpr::Between {
                expr: Box::new(self.bind_over_aggregation(
                    expr,
                    input_schema,
                    group_by_ast,
                    group_by,
                    aggregates,
                )?),
                low: Box::new(self.bind_over_aggregation(
                    low,
                    input_schema,
                    group_by_ast,
                    group_by,
                    aggregates,
                )?),
                high: Box::new(self.bind_over_aggregation(
                    high,
                    input_schema,
                    group_by_ast,
                    group_by,
                    aggregates,
                )?),
                negated: *negated,
            }),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Ok(BoundExpr::Like {
                expr: Box::new(self.bind_over_aggregation(
                    expr,
                    input_schema,
                    group_by_ast,
                    group_by,
                    aggregates,
                )?),
                pattern: Box::new(self.bind_over_aggregation(
                    pattern,
                    input_schema,
                    group_by_ast,
                    group_by,
                    aggregates,
                )?),
                negated: *negated,
            }),
            Expr::Function { .. } => unreachable!("handled above"),
        }
    }

    // ORDER BY resolves against output aliases, the post-aggregation schema
    // AND the pre-aggregation schema (SQL scoping rules); all three contexts
    // plus the aggregate state are genuinely needed at once
    #[allow(clippy::too_many_arguments)]
    fn resolve_order_by(
        &self,
        expr: &Expr,
        output: &[(BoundExpr, String)],
        output_schema: &Schema,
        is_aggregate: bool,
        input_schema: &Schema,
        group_by_ast: &[Expr],
        group_by: &[BoundExpr],
        aggregates: &[BoundAggregate],
    ) -> Result<usize> {
        // Positional reference: ORDER BY 2
        if let Expr::Literal(Literal::Int(n)) = expr {
            let n = *n;
            if n >= 1 && (n as usize) <= output.len() {
                return Ok(n as usize - 1);
            }
            return Err(BeasError::binding(format!(
                "ORDER BY position {n} is out of range"
            )));
        }
        // Name match against output aliases.
        if let Expr::Column { table: None, name } = expr {
            let name = name.to_ascii_lowercase();
            if let Some(i) = output.iter().position(|(_, n)| *n == name) {
                return Ok(i);
            }
        }
        // Expression match against an output expression.
        let bound = if is_aggregate {
            self.bind_over_aggregation(expr, input_schema, group_by_ast, group_by, aggregates)?
        } else {
            self.bind_scalar(expr, input_schema)?
        };
        if let Some(i) = output.iter().position(|(b, _)| *b == bound) {
            return Ok(i);
        }
        Err(BeasError::binding(format!(
            "ORDER BY expression {expr} must appear in the SELECT list (output schema {output_schema})"
        )))
    }
}

/// Convert an AST literal into a runtime value.
pub fn literal_to_value(l: &Literal) -> Value {
    match l {
        Literal::Int(i) => Value::Int(*i),
        Literal::Float(x) => Value::Float(*x),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Null => Value::Null,
    }
}

fn collect_aggregates(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Function { name, .. } => {
            if AggregateFunction::from_name(name).is_some() {
                out.push(expr.clone());
            }
        }
        Expr::Column { .. } | Expr::Literal(_) => {}
        Expr::BinaryOp { left, right, .. } => {
            collect_aggregates(left, out);
            collect_aggregates(right, out);
        }
        Expr::UnaryOp { expr, .. } => collect_aggregates(expr, out),
        Expr::IsNull { expr, .. } => collect_aggregates(expr, out),
        Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, out);
            for e in list {
                collect_aggregates(e, out);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_aggregates(expr, out);
            collect_aggregates(low, out);
            collect_aggregates(high, out);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_aggregates(expr, out);
            collect_aggregates(pattern, out);
        }
    }
}

/// Structural equivalence of AST expressions up to case of identifiers.
fn exprs_equivalent(a: &Expr, b: &Expr) -> bool {
    a.to_string().eq_ignore_ascii_case(&b.to_string())
}

fn default_name(e: &Expr) -> String {
    match e {
        Expr::Column { name, .. } => name.to_ascii_lowercase(),
        other => other.to_string().to_ascii_lowercase(),
    }
}

/// Infer the result type of a bound expression over `schema`.
pub fn infer_type(expr: &BoundExpr, schema: &Schema) -> DataType {
    match expr {
        BoundExpr::Column(i) => schema.field(*i).data_type,
        BoundExpr::Literal(v) => v.data_type().unwrap_or(DataType::Str),
        BoundExpr::Binary { op, left, right } => {
            if op.is_comparison()
                || matches!(
                    op,
                    crate::ast::BinaryOperator::And | crate::ast::BinaryOperator::Or
                )
            {
                DataType::Bool
            } else {
                let l = infer_type(left, schema);
                let r = infer_type(right, schema);
                DataType::common_type(l, r).unwrap_or(DataType::Float)
            }
        }
        BoundExpr::Not(_) => DataType::Bool,
        BoundExpr::Negate(e) => infer_type(e, schema),
        BoundExpr::IsNull { .. }
        | BoundExpr::InList { .. }
        | BoundExpr::Between { .. }
        | BoundExpr::Like { .. } => DataType::Bool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use beas_common::ColumnDef;
    use std::collections::HashMap;

    fn provider() -> HashMap<String, TableSchema> {
        let mut m = HashMap::new();
        m.insert(
            "call".to_string(),
            TableSchema::new(
                "call",
                vec![
                    ColumnDef::new("pnum", DataType::Str),
                    ColumnDef::new("recnum", DataType::Str),
                    ColumnDef::new("date", DataType::Date),
                    ColumnDef::new("region", DataType::Str),
                    ColumnDef::new("duration", DataType::Int),
                ],
            )
            .unwrap(),
        );
        m.insert(
            "business".to_string(),
            TableSchema::new(
                "business",
                vec![
                    ColumnDef::new("pnum", DataType::Str),
                    ColumnDef::new("type", DataType::Str),
                    ColumnDef::new("region", DataType::Str),
                ],
            )
            .unwrap(),
        );
        m
    }

    fn bind(sql: &str) -> Result<BoundQuery> {
        let p = provider();
        let binder = Binder::new(&p);
        binder.bind(&parse_select(sql)?)
    }

    #[test]
    fn bind_simple_projection_and_filter() {
        let q =
            bind("SELECT region, duration FROM call WHERE pnum = '123' AND duration > 60").unwrap();
        assert_eq!(q.tables.len(), 1);
        assert_eq!(q.output.len(), 2);
        assert!(!q.is_aggregate);
        assert_eq!(q.output_schema.field(0).name, "region");
        assert_eq!(q.output_schema.field(0).table.as_deref(), Some("call"));
        assert!(q.filter.is_some());
    }

    #[test]
    fn bind_join_with_aliases() {
        let q = bind(
            "SELECT c.region FROM call c, business b WHERE b.pnum = c.pnum AND b.type = 'bank'",
        )
        .unwrap();
        assert_eq!(q.tables.len(), 2);
        assert_eq!(q.tables[0].alias, "c");
        assert_eq!(q.tables[1].alias, "b");
        assert_eq!(q.tables[1].offset, 5);
        assert_eq!(q.tables[1].input_index("type"), Some(6));
        assert_eq!(q.input_schema.len(), 8);
    }

    #[test]
    fn bind_explicit_join_merges_on_condition() {
        let q = bind("SELECT c.region FROM call c JOIN business b ON b.pnum = c.pnum").unwrap();
        assert!(q.filter.is_some());
        let f = q.filter.unwrap();
        assert_eq!(f.referenced_columns(), vec![0, 5]);
    }

    #[test]
    fn bind_wildcards() {
        let q = bind("SELECT * FROM call c, business b").unwrap();
        assert_eq!(q.output.len(), 8);
        let q2 = bind("SELECT b.* FROM call c, business b").unwrap();
        assert_eq!(q2.output.len(), 3);
        assert_eq!(q2.output_schema.field(0).table.as_deref(), Some("b"));
    }

    #[test]
    fn bind_aggregate_group_by_having_order() {
        let q = bind(
            "SELECT region, COUNT(*) AS n, SUM(duration) FROM call \
             GROUP BY region HAVING COUNT(*) > 2 ORDER BY n DESC LIMIT 3",
        )
        .unwrap();
        assert!(q.is_aggregate);
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.aggregates.len(), 2);
        assert_eq!(q.agg_schema.len(), 3);
        assert_eq!(q.output.len(), 3);
        // COUNT(*) in HAVING reuses the projection's aggregate slot
        assert!(q.having.is_some());
        assert_eq!(q.order_by, vec![(1, false)]);
        assert_eq!(q.limit, Some(3));
        assert_eq!(q.output_schema.field(1).name, "n");
        assert_eq!(q.output_schema.field(1).data_type, DataType::Int);
        assert_eq!(q.output_schema.field(2).data_type, DataType::Int);
    }

    #[test]
    fn aggregate_query_rejects_unaggregated_columns() {
        let err = bind("SELECT region, duration FROM call GROUP BY region").unwrap_err();
        assert!(err.to_string().contains("GROUP BY"));
    }

    #[test]
    fn having_without_group_rejected() {
        assert!(bind("SELECT region FROM call HAVING region = 'a'").is_err());
    }

    #[test]
    fn aggregates_in_where_rejected() {
        assert!(bind("SELECT region FROM call WHERE COUNT(*) > 1").is_err());
    }

    #[test]
    fn unknown_table_and_column_errors() {
        assert!(bind("SELECT x FROM nosuch").is_err());
        assert!(bind("SELECT nosuchcol FROM call").is_err());
        assert!(bind("SELECT call.pnum FROM call c").is_err()); // alias hides table name
        let err = bind("SELECT pnum FROM call, business").unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn duplicate_alias_rejected() {
        assert!(bind("SELECT 1 FROM call c, business c").is_err());
    }

    #[test]
    fn order_by_variants() {
        let q = bind("SELECT region, duration FROM call ORDER BY 2, region DESC").unwrap();
        assert_eq!(q.order_by, vec![(1, true), (0, false)]);
        let q2 = bind("SELECT region FROM call ORDER BY duration").unwrap_err();
        assert!(q2.to_string().contains("ORDER BY"));
        let q3 = bind("SELECT region FROM call ORDER BY 5");
        assert!(q3.is_err());
    }

    #[test]
    fn count_distinct_and_duplicate_aggregates_deduplicated() {
        let q =
            bind("SELECT COUNT(DISTINCT pnum), COUNT(DISTINCT pnum), COUNT(*) FROM call").unwrap();
        assert_eq!(q.aggregates.len(), 2);
        assert!(q.aggregates[0].distinct);
        assert!(q.aggregates[0].arg.is_some());
        assert!(q.aggregates[1].arg.is_none());
        assert_eq!(q.output.len(), 3);
        // first two outputs point at the same aggregate slot
        assert_eq!(q.output[0].0, q.output[1].0);
    }

    #[test]
    fn group_by_without_aggregates() {
        let q = bind("SELECT region FROM call GROUP BY region").unwrap();
        assert!(q.is_aggregate);
        assert!(q.aggregates.is_empty());
        assert_eq!(q.agg_schema.len(), 1);
    }

    #[test]
    fn expression_over_aggregates() {
        let q = bind("SELECT region, SUM(duration) / COUNT(*) AS mean FROM call GROUP BY region")
            .unwrap();
        assert_eq!(q.aggregates.len(), 2);
        assert_eq!(q.output[1].1, "mean");
    }

    #[test]
    fn literal_conversion() {
        assert_eq!(literal_to_value(&Literal::Int(3)), Value::Int(3));
        assert_eq!(literal_to_value(&Literal::Null), Value::Null);
        assert_eq!(literal_to_value(&Literal::Bool(false)), Value::Bool(false));
        assert_eq!(literal_to_value(&Literal::Str("s".into())), Value::str("s"));
        assert_eq!(literal_to_value(&Literal::Float(1.5)), Value::Float(1.5));
    }

    #[test]
    fn select_without_from_unsupported() {
        assert!(bind("SELECT 1").is_err());
    }
}
