//! Morsel-parallel ≡ serial semantics: the exchange-based parallel executor
//! must produce exactly the rows — in exactly the order — of the serial
//! reference pipeline, on mixed-type data, for every optimizer profile,
//! across ORDER BY / LIMIT / DISTINCT / aggregation / join shapes, and the
//! two paths must agree on error propagation.  Worker count and morsel
//! granularity are forced down so small random tables still split into many
//! morsels scheduled across racing threads.

use beas::engine::ParallelConfig;
use beas::prelude::*;
use proptest::prelude::*;

/// Mixed-type key pool: ints-as-floats, fractional floats, negative zero,
/// NULLs — the values whose canonicalization has historically diverged
/// between execution paths.
fn key_value(choice: u64) -> Value {
    match choice % 7 {
        0 => Value::Float(1.0),
        1 => Value::Float(2.0),
        2 => Value::Float(2.5),
        3 => Value::Float(-0.0),
        4 => Value::Float(3.0),
        5 => Value::Null,
        _ => Value::Float(0.0),
    }
}

fn build_db(seed: u64, n1: usize, n2: usize) -> Database {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "t1",
            vec![
                beas::common::ColumnDef::nullable("k", DataType::Float),
                beas::common::ColumnDef::new("v", DataType::Int),
                beas::common::ColumnDef::new("tag", DataType::Str),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "t2",
            vec![
                beas::common::ColumnDef::nullable("k", DataType::Float),
                beas::common::ColumnDef::new("name", DataType::Str),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    let tags = ["a", "b", "c"];
    for _ in 0..n1 {
        db.insert(
            "t1",
            vec![
                key_value(next()),
                Value::Int((next() % 50) as i64),
                Value::str(tags[(next() % 3) as usize]),
            ],
        )
        .unwrap();
    }
    for i in 0..n2 {
        db.insert(
            "t2",
            vec![key_value(next()), Value::str(format!("n{}", i % 4))],
        )
        .unwrap();
    }
    db
}

/// Query shapes covering every morsel-partial mode: plain exchange, quota
/// LIMIT, pre-deduped Distinct, per-morsel top-k under ORDER BY + LIMIT,
/// merged aggregation partials (COUNT/MIN/MAX are merge-exact; SUM/AVG are
/// gated onto the serial fold), and exchanges feeding both join sides.
fn query_shape(shape: usize, limit: usize) -> String {
    match shape % 8 {
        0 => format!("select v from t1 where tag = 'a' limit {limit}"),
        1 => format!("select distinct tag from t1 order by tag limit {limit}"),
        2 => "select t1.v, t2.name from t1, t2 where t1.k = t2.k".to_string(),
        3 => format!(
            "select t1.v from t1, t2 where t1.k = t2.k and t1.tag = 'b' \
             order by t1.v desc limit {limit}"
        ),
        4 => "select tag, count(*), min(v), max(v), count(distinct v) from t1 \
              group by tag order by tag"
            .to_string(),
        5 => format!("select distinct k, v from t1 order by v, k limit {limit}"),
        6 => "select distinct v, tag from t1 where v > 10".to_string(),
        _ => "select tag, sum(v), avg(v), count(distinct v) from t1 group by tag order by tag"
            .to_string(),
    }
}

/// Forced-parallel configuration: racing workers over tiny morsels.
fn forced(workers: usize) -> ParallelConfig {
    ParallelConfig {
        workers,
        min_rows: 0,
        morsel_rows: 4,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Parallel ≡ serial: same rows, same order, for every profile, shape
    /// and worker count.
    #[test]
    fn parallel_executor_matches_serial(
        seed in 0u64..10_000,
        n1 in 0usize..48,
        n2 in 0usize..25,
        shape in 0usize..8,
        limit in 1usize..12,
        workers in 2usize..5,
    ) {
        let db = build_db(seed, n1, n2);
        let sql = query_shape(shape, limit);
        for profile in OptimizerProfile::all() {
            let serial = Engine::new(profile)
                .with_parallelism(ParallelConfig::serial())
                .run(&db, &sql);
            let parallel = Engine::new(profile)
                .with_parallelism(forced(workers))
                .run(&db, &sql);
            match (serial, parallel) {
                (Ok(s), Ok(p)) => prop_assert!(
                    s.rows == p.rows,
                    "parallel != serial for {sql} under {profile:?} ({workers} workers):\n\
                     serial   {:?}\nparallel {:?}",
                    s.rows,
                    p.rows
                ),
                (Err(se), Err(pe)) => prop_assert_eq!(se.kind(), pe.kind()),
                (s, p) => prop_assert!(
                    false,
                    "error divergence for {sql} under {profile:?}: serial {:?}, parallel {:?}",
                    s.map(|r| r.rows.len()),
                    p.map(|r| r.rows.len())
                ),
            }
        }
    }
}

#[test]
fn parallel_error_propagation_matches_serial() {
    // A predicate that type-errors on every row: both paths must surface
    // the same error kind, whichever worker finds it first.
    let db = build_db(7, 40, 0);
    let sql = "select v from t1 where tag > 5";
    let serial = Engine::default()
        .with_parallelism(ParallelConfig::serial())
        .run(&db, sql)
        .expect_err("serial type error");
    let parallel = Engine::default()
        .with_parallelism(forced(3))
        .run(&db, sql)
        .expect_err("parallel type error");
    assert_eq!(serial.kind(), parallel.kind());
    assert_eq!(serial.kind(), "type");
}

#[test]
fn unlimited_scans_account_identically() {
    // Without a LIMIT both paths read every base row: total tuples accessed
    // must agree exactly (the morsel merge sums per-morsel scan counters).
    let db = build_db(11, 40, 20);
    for sql in [
        "select v, tag from t1 where v > 5",
        "select distinct tag from t1",
        "select tag, count(*) from t1 group by tag",
        "select t1.v, t2.name from t1, t2 where t1.k = t2.k",
    ] {
        let serial = Engine::default()
            .with_parallelism(ParallelConfig::serial())
            .run(&db, sql)
            .unwrap();
        let parallel = Engine::default()
            .with_parallelism(forced(3))
            .run(&db, sql)
            .unwrap();
        assert_eq!(serial.rows, parallel.rows, "{sql}");
        assert_eq!(
            serial.metrics.total_tuples_accessed(),
            parallel.metrics.total_tuples_accessed(),
            "{sql}"
        );
    }
}
