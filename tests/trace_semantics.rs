//! Trace-neutrality differential harness: observability must never change
//! an answer.  The same query suite — covered (bounded fetch), uncovered
//! (conventional), malformed SQL, and a quota trip — runs under
//! [`TraceLevel::Off`], [`TraceLevel::Counters`] and [`TraceLevel::Timing`]
//! on both engines (the BEAS bounded executor and the baseline engine in
//! row-at-a-time and vectorized+parallel configurations), and every
//! observable output is compared for bit-exact equality: rows (as Debug
//! strings, distinguishing `Int(1)` from `Float(1.0)`), error kind *and*
//! message, `tuples_accessed`, and the quota charge.  Timing may only ever
//! change how much the system *records*, never what it *computes*.

use beas::engine::ParallelConfig;
use beas::prelude::*;

fn covered_query() -> String {
    let (btype, region, pid, date) = beas::tlc::default_params();
    beas::tlc::example2_query(btype, region, pid, date)
}

const UNCOVERED: &str = "SELECT call.region, COUNT(*) AS n FROM call \
     WHERE call.duration > 10 \
     GROUP BY call.region ORDER BY call.region";

/// Everything a level sweep is allowed to observe, rendered to strings so
/// a mismatch diff reads directly.
fn observe(system: &BeasSystem) -> Vec<String> {
    let mut out = Vec::new();
    let covered = covered_query();

    // BEAS bounded path.
    let bounded = system.execute_sql(&covered).unwrap();
    out.push(format!(
        "bounded: rows={:?} mode={:?} tuples={} bound={:?}",
        bounded.rows, bounded.mode, bounded.tuples_accessed, bounded.deduced_bound
    ));

    // BEAS conventional fallback.
    let conventional = system.execute_sql(UNCOVERED).unwrap();
    out.push(format!(
        "conventional: rows={:?} mode={:?} tuples={}",
        conventional.rows, conventional.mode, conventional.tuples_accessed
    ));

    // Errors must carry the same kind and message at every level.
    let err = system
        .execute_sql("SELECT nope FROM nothing")
        .expect_err("unknown table");
    out.push(format!("error: kind={} msg={err}", err.kind()));

    // Quota trips must charge identically before terminating (the bounded
    // run for this query actually fetches 4 tuples, so a 2-tuple cap trips
    // mid-plan).
    let tracker = ResourceQuota::unlimited().with_max_tuples(2).tracker();
    let tripped = system
        .execute_sql_with_quota(&covered, Some(&tracker))
        .expect_err("2 tuples cannot cover the bounded plan");
    out.push(format!(
        "quota: kind={} msg={tripped} used={}",
        tripped.kind(),
        tracker.tuples_used()
    ));

    // Baseline engine, row pipeline and vectorized+parallel morsels.
    let row_engine = Engine::default().with_exec_profile(ExecProfile::RowAtATime);
    let morsel_engine = Engine::default()
        .with_exec_profile(ExecProfile::Vectorized)
        .with_parallelism(ParallelConfig {
            workers: 4,
            min_rows: 1,
            morsel_rows: 16,
        });
    for (name, engine) in [("row", row_engine), ("morsel", morsel_engine)] {
        for (label, sql) in [("covered", covered.as_str()), ("uncovered", UNCOVERED)] {
            let result = engine.run(system.database(), sql).unwrap();
            out.push(format!(
                "{name}/{label}: rows={:?} tuples={}",
                result.rows,
                result.metrics.total_tuples_accessed()
            ));
        }
    }

    // A service submission: the admission decision and the quota spend the
    // trace reports must not depend on the trace level.
    let service = QueryService::new(
        BeasSystem::with_schema(beas::tlc::tiny_database(60), beas::tlc::tlc_access_schema())
            .unwrap(),
    );
    let session = service.session(ResourceQuota::unlimited().with_max_tuples(50_000_000));
    let outcome = session.execute(&covered).unwrap();
    out.push(format!(
        "service: decision={:?} tuples_used={} rows={:?}",
        outcome.decision,
        outcome.trace.tuples_used,
        outcome.answer.map(|a| a.rows)
    ));

    out
}

#[test]
fn answers_are_bit_identical_across_trace_levels() {
    let system =
        BeasSystem::with_schema(beas::tlc::tiny_database(60), beas::tlc::tlc_access_schema())
            .unwrap();
    let previous = set_trace_level(TraceLevel::Off);
    let off = observe(&system);
    set_trace_level(TraceLevel::Counters);
    let counters = observe(&system);
    set_trace_level(TraceLevel::Timing);
    let timing = observe(&system);
    set_trace_level(previous);
    assert_eq!(off, counters, "Counters must not perturb any answer");
    assert_eq!(off, timing, "Timing must not perturb any answer");
}

/// Collect every label in the analyzed tree, depth-first, matching the
/// indentation-stripped shape of `LogicalPlan::explain`.
fn labels(node: &beas::engine::AnalyzeNode, out: &mut Vec<String>) {
    out.push(node.label.clone());
    for child in &node.children {
        labels(child, out);
    }
}

#[test]
fn explain_analyze_covers_exchange_and_vectorized_morsel_runs() {
    let db = beas::tlc::tiny_database(60);
    // Exchange-parallel run: workers pull morsels through row fragments.
    let parallel = Engine::default()
        .with_parallelism(ParallelConfig {
            workers: 4,
            min_rows: 1,
            morsel_rows: 16,
        })
        .explain_analyze(&db, UNCOVERED)
        .unwrap();
    // Vectorized serial run: columnar kernels over morsel batches.
    let vectorized = Engine::default()
        .with_exec_profile(ExecProfile::Vectorized)
        .explain_analyze(&db, UNCOVERED)
        .unwrap();

    for analysis in [&parallel, &vectorized] {
        // The analyzed tree has exactly the shape `explain` reports.
        let mut tree_labels = Vec::new();
        labels(&analysis.tree, &mut tree_labels);
        let plan_labels: Vec<String> = analysis
            .plan_text
            .lines()
            .map(|l| l.trim_start().to_string())
            .collect();
        assert_eq!(tree_labels, plan_labels);
        let total: u64 = analysis.result.metrics.total_tuples_accessed();
        assert!(total > 0, "a scan must report tuples accessed");
    }

    // Physical-path annotations surface in the rendered breakdown.
    let rendered = parallel.tree.render();
    assert!(rendered.contains("+ Exchange("), "{rendered}");
    let rendered = vectorized.tree.render();
    assert!(rendered.contains("+ Vectorized(batches="), "{rendered}");
}
