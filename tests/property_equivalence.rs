//! Property-based integration tests: on randomly generated conforming
//! databases and randomly parameterized covered queries, bounded evaluation
//! agrees with the conventional engine, the deduced bound is a true upper
//! bound on actual data access, and incremental index maintenance matches a
//! from-scratch rebuild.

use beas::prelude::*;
use proptest::prelude::*;

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let o = x.total_cmp(y);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

fn distinct(rows: Vec<Row>) -> Vec<Row> {
    let mut seen = std::collections::HashSet::new();
    rows.into_iter()
        .filter(|r| seen.insert(r.clone()))
        .collect()
}

fn build_system(seed: u64) -> BeasSystem {
    let config = beas::tlc::TlcConfig {
        scale_factor: 1,
        seed,
    };
    let db = beas::tlc::generate(&config).unwrap();
    BeasSystem::with_schema(db, beas::tlc::tlc_access_schema()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// Bounded evaluation computes exactly the baseline's (distinct) answers
    /// for Example 2-style queries under random parameters and random data.
    #[test]
    fn bounded_matches_baseline_on_random_parameters(
        seed in 0u64..4,
        type_idx in 0usize..6,
        region_idx in 0usize..5,
        pid in 1i64..50,
        day in 0u8..28,
    ) {
        let system = build_system(seed);
        let btype = beas::tlc::generator::vocab::BUSINESS_TYPES[type_idx];
        let region = beas::tlc::generator::vocab::REGIONS[region_idx];
        let date = beas::tlc::generator::date(day);
        let sql = beas::tlc::example2_query(btype, region, pid, &date);

        let report = system.check(&sql).unwrap();
        prop_assert!(report.covered);
        let outcome = system.execute_sql(&sql).unwrap();
        let baseline = Engine::default().run(system.database(), &sql).unwrap();
        prop_assert_eq!(sorted(outcome.rows.clone()), sorted(distinct(baseline.rows)));
        // deduced bound is a true upper bound on the data actually accessed
        prop_assert!(outcome.tuples_accessed <= report.deduced_bound.unwrap());
    }

    /// The same equivalence holds for single-relation point queries through
    /// ψ1 with random keys, including keys with no matching data.
    #[test]
    fn point_lookups_match_baseline(
        seed in 0u64..3,
        customer in 0usize..400,
        day in 0u8..28,
    ) {
        let system = build_system(seed);
        let sql = format!(
            "SELECT DISTINCT recnum, region, duration FROM call \
             WHERE pnum = '{}' AND date = '{}'",
            beas::tlc::generator::pnum(customer),
            beas::tlc::generator::date(day)
        );
        let outcome = system.execute_sql(&sql).unwrap();
        prop_assert!(outcome.bounded);
        let baseline = Engine::default().run(system.database(), &sql).unwrap();
        prop_assert_eq!(sorted(outcome.rows), sorted(distinct(baseline.rows)));
    }

    /// Incrementally maintained constraint indices are indistinguishable from
    /// indices rebuilt from scratch after random insert/delete batches.
    #[test]
    fn incremental_maintenance_equals_rebuild(
        seed in 0u64..3,
        inserts in 1usize..40,
        delete_modulus in 2i64..30,
    ) {
        let config = beas::tlc::TlcConfig { scale_factor: 1, seed };
        let mut db = beas::tlc::generate(&config).unwrap();
        let mut schema = beas::tlc::tlc_access_schema();
        let mut indexes = beas::access::build_indexes(&db, &schema).unwrap();
        let maintainer = beas::access::Maintainer::new(beas::access::MaintenancePolicy::AutoAdjust);

        let new_rows: Vec<Row> =
            db.table("call").unwrap().rows_iter().take(inserts).cloned().collect();
        maintainer.insert_rows(&mut db, &mut schema, &mut indexes, "call", new_rows).unwrap();
        maintainer
            .delete_rows(&mut db, &schema, &mut indexes, "call", |r| {
                r[4].as_int().unwrap_or(0) % delete_modulus == 0
            })
            .unwrap();

        let rebuilt = beas::access::build_indexes(&db, &schema).unwrap();
        for c in schema.for_table("call") {
            let a = indexes.for_constraint(c).unwrap();
            let b = rebuilt.for_constraint(c).unwrap();
            prop_assert_eq!(a.total_entries(), b.total_entries());
            prop_assert_eq!(a.distinct_keys(), b.distinct_keys());
            prop_assert_eq!(a.observed_max_cardinality(), b.observed_max_cardinality());
        }
    }

    /// Approximation under a random budget never exceeds the budget, reports
    /// a coverage in [0, 1], and only returns genuine answers.
    #[test]
    fn approximation_is_sound_and_budgeted(
        budget in 1u64..5_000,
        type_idx in 0usize..6,
    ) {
        let system = build_system(1);
        let btype = beas::tlc::generator::vocab::BUSINESS_TYPES[type_idx];
        let sql = format!(
            "SELECT DISTINCT c.recnum FROM business b, call c \
             WHERE b.type = '{btype}' AND b.region = 'east' \
             AND b.pnum = c.pnum AND c.date = '2016-07-04'"
        );
        let approx = system.approximate(&sql, budget).unwrap();
        prop_assert!(approx.tuples_accessed <= budget);
        prop_assert!((0.0..=1.0).contains(&approx.coverage));
        let exact: std::collections::HashSet<Row> =
            system.execute_sql(&sql).unwrap().rows.into_iter().collect();
        for row in &approx.rows {
            prop_assert!(exact.contains(row));
        }
    }
}
