//! Pipelined ≡ batch semantics: the pull-based streaming executor must
//! produce exactly the rows — in exactly the order — that a reference
//! batch-materializing interpreter (PR-2's execution model) produces for
//! the same logical plan, on mixed-type data, under every optimizer
//! profile.  Plus early-termination: a LIMIT under a filter must stop the
//! scan, observable through the scan's `tuples accessed` counter.

use beas::engine_executor::aggregate;
use beas::prelude::*;
use beas::sql::{evaluate, evaluate_predicate};
use proptest::prelude::*;

/// Reference batch interpreter: every operator materializes its full
/// input, joins are left-major nested loops over canonical keys, sorts are
/// stable, LIMIT truncates the finished batch.  Deliberately naive — it is
/// the executable specification the pipeline is checked against.
fn batch_execute(plan: &LogicalPlan, db: &Database) -> Result<Vec<Row>> {
    Ok(match plan {
        LogicalPlan::Scan { table, .. } => db.table(table)?.rows_iter().cloned().collect(),
        LogicalPlan::Filter { input, predicate } => {
            let mut out = Vec::new();
            for row in batch_execute(input, db)? {
                if evaluate_predicate(predicate, &row)? {
                    out.push(row);
                }
            }
            out
        }
        LogicalPlan::Join {
            left, right, keys, ..
        } => {
            let left_rows = batch_execute(left, db)?;
            let right_rows = batch_execute(right, db)?;
            let left_idx: Vec<usize> = keys.iter().map(|(l, _)| *l).collect();
            let right_idx: Vec<usize> = keys.iter().map(|(_, r)| *r).collect();
            let mut out = Vec::new();
            for l in &left_rows {
                if keys.is_empty() {
                    for r in &right_rows {
                        let mut row = l.clone();
                        row.extend(r.iter().cloned());
                        out.push(row);
                    }
                    continue;
                }
                let Some(lk) = beas::common::join_key(l, &left_idx) else {
                    continue;
                };
                for r in &right_rows {
                    if beas::common::join_key(r, &right_idx).as_ref() == Some(&lk) {
                        let mut row = l.clone();
                        row.extend(r.iter().cloned());
                        out.push(row);
                    }
                }
            }
            out
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
            ..
        } => aggregate(&batch_execute(input, db)?, group_by, aggregates)?,
        LogicalPlan::Project { input, exprs, .. } => {
            let mut out = Vec::new();
            for row in batch_execute(input, db)? {
                let mut projected = Vec::with_capacity(exprs.len());
                for (e, _) in exprs {
                    projected.push(evaluate(e, &row)?);
                }
                out.push(projected);
            }
            out
        }
        LogicalPlan::Distinct { input } => beas::common::dedupe(batch_execute(input, db)?),
        LogicalPlan::Sort { input, keys } => {
            let mut rows = batch_execute(input, db)?;
            rows.sort_by(|a, b| {
                for (idx, asc) in keys {
                    let ord = a[*idx].total_cmp(&b[*idx]);
                    let ord = if *asc { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            rows
        }
        LogicalPlan::Limit { input, limit } => {
            let mut rows = batch_execute(input, db)?;
            rows.truncate(*limit as usize);
            rows
        }
    })
}

/// Mixed-type key pool: ints-as-floats, fractional floats, NULLs — the
/// values whose canonicalization has historically diverged between paths.
fn key_value(choice: u64) -> Value {
    match choice % 7 {
        0 => Value::Float(1.0),
        1 => Value::Float(2.0),
        2 => Value::Float(2.5),
        3 => Value::Float(-0.0),
        4 => Value::Float(3.0),
        5 => Value::Null,
        _ => Value::Float(0.0),
    }
}

fn build_db(seed: u64, n1: usize, n2: usize) -> Database {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "t1",
            vec![
                beas::common::ColumnDef::nullable("k", DataType::Float),
                beas::common::ColumnDef::new("v", DataType::Int),
                beas::common::ColumnDef::new("tag", DataType::Str),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "t2",
            vec![
                beas::common::ColumnDef::nullable("k", DataType::Float),
                beas::common::ColumnDef::new("name", DataType::Str),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    let tags = ["a", "b", "c"];
    for _ in 0..n1 {
        db.insert(
            "t1",
            vec![
                key_value(next()),
                Value::Int((next() % 50) as i64),
                Value::str(tags[(next() % 3) as usize]),
            ],
        )
        .unwrap();
    }
    for i in 0..n2 {
        db.insert(
            "t2",
            vec![key_value(next()), Value::str(format!("n{}", i % 4))],
        )
        .unwrap();
    }
    db
}

fn query_shape(shape: usize, limit: usize) -> String {
    match shape % 6 {
        0 => format!("select v from t1 where tag = 'a' limit {limit}"),
        1 => format!("select distinct tag from t1 order by tag limit {limit}"),
        2 => "select t1.v, t2.name from t1, t2 where t1.k = t2.k".to_string(),
        3 => format!(
            "select t1.v from t1, t2 where t1.k = t2.k and t1.tag = 'b' \
             order by t1.v desc limit {limit}"
        ),
        4 => "select tag, count(*), sum(v) from t1 group by tag order by tag".to_string(),
        _ => format!("select distinct k, v from t1 order by v, k limit {limit}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The streaming operators produce identical rows *and order* to the
    /// batch reference on mixed-type data, for every query shape and both
    /// join algorithms.
    #[test]
    fn pipelined_executor_matches_batch_reference(
        seed in 0u64..10_000,
        n1 in 0usize..40,
        n2 in 0usize..25,
        shape in 0usize..6,
        limit in 1usize..12,
    ) {
        let db = build_db(seed, n1, n2);
        let sql = query_shape(shape, limit);
        for profile in OptimizerProfile::all() {
            let engine = Engine::new(profile);
            let bound = engine.bind(&db, &sql).unwrap();
            let plan = engine.plan(&db, &bound).unwrap();
            let reference = batch_execute(&plan, &db).unwrap();
            let result = engine.run_bound(&db, &bound).unwrap();
            prop_assert!(
                result.rows == reference,
                "pipelined != batch for {sql} under {profile:?}"
            );
        }
    }
}

#[test]
fn limit_under_filter_terminates_the_scan() {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "big",
            vec![
                beas::common::ColumnDef::new("id", DataType::Int),
                beas::common::ColumnDef::new("tag", DataType::Str),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    for i in 0..50_000i64 {
        let tag = if i % 2 == 0 { "keep" } else { "drop" };
        db.insert("big", vec![Value::Int(i), Value::str(tag)])
            .unwrap();
    }
    let engine = Engine::default();
    let result = engine
        .run(&db, "select id from big where tag = 'keep' limit 10")
        .unwrap();
    assert_eq!(result.rows.len(), 10);
    let scan = result
        .metrics
        .operators
        .iter()
        .find(|o| o.operator.starts_with("SeqScan"))
        .expect("scan metrics");
    // 10 survivors at 50% selectivity ≈ 20 scanned rows, not 50 000
    assert!(
        scan.tuples_accessed <= 40,
        "scan read {} of 50000 rows — early termination failed",
        scan.tuples_accessed
    );
    // without the limit the same scan reads everything
    let full = engine
        .run(&db, "select id from big where tag = 'keep'")
        .unwrap();
    let full_scan = full
        .metrics
        .operators
        .iter()
        .find(|o| o.operator.starts_with("SeqScan"))
        .unwrap();
    assert_eq!(full_scan.tuples_accessed, 50_000);
}

#[test]
fn order_by_limit_still_consumes_but_returns_topk() {
    // Sort is a pipeline breaker: the scan must still read everything, and
    // the answer must be the true top-k (not a prefix).
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "nums",
            vec![beas::common::ColumnDef::new("x", DataType::Int)],
        )
        .unwrap(),
    )
    .unwrap();
    for i in 0..1000i64 {
        db.insert("nums", vec![Value::Int((i * 7919) % 1000)])
            .unwrap();
    }
    let result = Engine::default()
        .run(&db, "select x from nums order by x desc limit 3")
        .unwrap();
    assert_eq!(
        result.rows,
        vec![
            vec![Value::Int(999)],
            vec![Value::Int(998)],
            vec![Value::Int(997)]
        ]
    );
    let scan = result
        .metrics
        .operators
        .iter()
        .find(|o| o.operator.starts_with("SeqScan"))
        .unwrap();
    assert_eq!(scan.tuples_accessed, 1000);
}
