//! MVCC storage properties: structurally shared snapshots must be
//! *observationally* deep copies.  Random interleavings of insert/delete
//! batches against a multi-segment table must leave every earlier
//! snapshot bit-identical to a deep-copy shadow taken at the same moment;
//! forks must copy no rows and no index buckets; and the read-set plan
//! cache must keep plans alive across writes that don't touch their
//! tables.

use beas::prelude::*;
use beas::storage::SEGMENT_ROWS;
use proptest::prelude::*;

fn base_schema() -> TableSchema {
    TableSchema::new(
        "t",
        vec![
            beas::common::ColumnDef::new("k", DataType::Int),
            beas::common::ColumnDef::new("v", DataType::Int),
        ],
    )
    .unwrap()
}

/// A database whose single table spans multiple row segments, plus the
/// deep-copy shadow of its contents.
fn seeded(extra: usize) -> (Database, Vec<Row>) {
    let mut db = Database::new();
    db.create_table(base_schema()).unwrap();
    let rows: Vec<Row> = (0..SEGMENT_ROWS + extra)
        .map(|i| vec![Value::Int(i as i64), Value::Int((i % 101) as i64)])
        .collect();
    db.insert_many("t", rows.clone()).unwrap();
    (db, rows)
}

/// One randomized maintenance step.
#[derive(Debug, Clone)]
enum Op {
    /// Append `count` fresh rows tagged `salt`.
    Insert { count: usize, salt: i64 },
    /// Delete every row whose `v % modulus == residue`.
    Delete { modulus: i64, residue: i64 },
    /// Pin the current state (a structural clone) plus its deep shadow.
    Snapshot,
}

/// Derive a deterministic op sequence from an integer seed (the proptest
/// shim only samples integer ranges).
fn ops_from_seed(seed: u64, count: usize) -> Vec<Op> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..count)
        .map(|_| match next() % 5 {
            0 | 1 => Op::Insert {
                count: (next() % 63 + 1) as usize,
                salt: (next() % 1000) as i64,
            },
            2 | 3 => {
                let modulus = (next() % 7 + 2) as i64;
                Op::Delete {
                    modulus,
                    residue: (next() % modulus as u64) as i64,
                }
            }
            _ => Op::Snapshot,
        })
        .collect()
}

fn table_rows(db: &Database) -> Vec<Row> {
    db.table("t").unwrap().rows_iter().cloned().collect()
}

/// Deep structural validation (segment layout, catalog/stats consistency)
/// after every random step.  Active in debug builds and under
/// `--features validate`; a no-op in plain release builds, where the
/// validators are compiled out.
fn check_db(db: &Database) {
    #[cfg(any(debug_assertions, feature = "validate"))]
    db.check_invariants().unwrap();
    #[cfg(not(any(debug_assertions, feature = "validate")))]
    let _ = db;
}

/// Whole-system validation: database, every constraint index against its
/// table, and the plan cache (see `BeasSystem::check_invariants`).
fn check_system(system: &BeasSystem) {
    #[cfg(any(debug_assertions, feature = "validate"))]
    system.check_invariants().unwrap();
    #[cfg(not(any(debug_assertions, feature = "validate")))]
    let _ = system;
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Structural sharing is an implementation detail: under any
    /// interleaving of writes and snapshots, (a) the live database always
    /// matches a deep-copy shadow mutated by the same logical operations,
    /// and (b) every snapshot taken along the way stays bit-identical to
    /// the shadow frozen with it, no matter what later writes did.
    #[test]
    fn random_write_interleavings_leave_snapshots_bit_identical_to_deep_copies(
        extra in 1usize..1500,
        seed in 0u64..1_000_000,
        op_count in 1usize..14,
    ) {
        let ops = ops_from_seed(seed, op_count);
        let (mut db, mut shadow) = seeded(extra);
        let mut next_key = shadow.len() as i64;
        let mut snapshots: Vec<(Database, Vec<Row>)> = vec![(db.clone(), shadow.clone())];
        for op in &ops {
            match op {
                Op::Insert { count, salt } => {
                    for _ in 0..*count {
                        let row = vec![Value::Int(next_key), Value::Int(salt % 101)];
                        db.insert("t", row.clone()).unwrap();
                        shadow.push(row);
                        next_key += 1;
                    }
                }
                Op::Delete { modulus, residue } => {
                    let (m, r) = (*modulus, *residue);
                    let matches =
                        move |row: &Row| row[1].as_int().map(|v| v % m == r).unwrap_or(false);
                    db.table_mut("t").unwrap().delete_where(matches);
                    shadow.retain(|row| !matches(row));
                }
                Op::Snapshot => snapshots.push((db.clone(), shadow.clone())),
            }
            // the live database tracks its deep shadow after every step,
            // and its internal structure stays valid (segment layout,
            // catalog and stats-cache consistency)
            prop_assert_eq!(table_rows(&db), shadow.clone());
            check_db(&db);
        }
        // no snapshot was disturbed by anything that happened after it —
        // and each one is still structurally valid on its own
        for (snap_db, snap_shadow) in &snapshots {
            prop_assert_eq!(&table_rows(snap_db), snap_shadow);
            prop_assert_eq!(
                snap_db.table("t").unwrap().row_count(),
                snap_shadow.len()
            );
            check_db(snap_db);
        }
    }
}

/// `fork()` is O(handles): every row segment and every index shard of the
/// fork is physically the parent's allocation — nothing row-sized is
/// copied until a write actually lands.
#[test]
fn fork_copies_no_rows_and_no_index_buckets() {
    let db = beas::tlc::generate(&beas::tlc::TlcConfig::at_scale(1)).unwrap();
    let system = BeasSystem::with_schema(db, beas::tlc::tlc_access_schema()).unwrap();
    let fork = system.fork();
    for name in system.database().table_names() {
        let a = system.database().table(&name).unwrap();
        let b = fork.database().table(&name).unwrap();
        assert_eq!(
            a.shared_segment_count(b),
            a.segment_count(),
            "{name}: fork must share every row segment"
        );
    }
    for c in system.access_schema().constraints() {
        let a = system.indexes().for_constraint(c).unwrap();
        let b = fork.indexes().for_constraint(c).unwrap();
        assert_eq!(
            a.shared_shard_count(b),
            a.shard_count(),
            "{}: fork must share every index shard",
            c.id()
        );
    }
    // sharing everything left both sides structurally valid, with every
    // index still equal to a from-scratch rebuild over its table
    check_system(&system);
    check_system(&fork);
}

/// Read-set validation end to end: a cached plan over one table keeps
/// serving hits across a write batch to a different table, and only a
/// write to its own table re-prepares it.
#[test]
fn cached_plans_survive_writes_to_unrelated_tables() {
    let db = beas::tlc::generate(&beas::tlc::TlcConfig::at_scale(1)).unwrap();
    let mut system = BeasSystem::with_schema(db, beas::tlc::tlc_access_schema()).unwrap();
    let q = "select distinct region from call where pnum = 'p1'";
    let first = system.execute_sql(q).unwrap();
    assert_eq!(system.plan_cache_stats().misses, 1);

    // a maintenance batch on `business` advances the database generation
    // but leaves every table in the plan's read set untouched
    let sample: Vec<Row> = system
        .database()
        .table("business")
        .unwrap()
        .rows_iter()
        .take(5)
        .cloned()
        .collect();
    system.insert_rows("business", sample).unwrap();
    let again = system.execute_sql(q).unwrap();
    assert_eq!(again.rows, first.rows);
    let stats = system.plan_cache_stats();
    assert_eq!(stats.hits, 1, "unrelated write must not evict: {stats}");
    assert_eq!(stats.invalidations, 0);

    // a write to `call` itself invalidates exactly that entry
    let sample: Vec<Row> = system
        .database()
        .table("call")
        .unwrap()
        .rows_iter()
        .take(1)
        .cloned()
        .collect();
    system.insert_rows("call", sample).unwrap();
    system.execute_sql(q).unwrap();
    let stats = system.plan_cache_stats();
    assert_eq!(stats.invalidations, 1);
    assert_eq!(stats.misses, 2);
    // maintenance writes left tables, indexes and the plan cache coherent
    check_system(&system);
}
