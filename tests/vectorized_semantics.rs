//! Vectorized ≡ row differential harness: the columnar kernel path must be
//! **bit-exact** with the row-at-a-time reference pipeline — same rows, same
//! order, same `Int`/`Float` variants (compared as Debug strings, which
//! distinguish `Int(1)` from `Float(1.0)` and `-0.0` from `0.0`), same error
//! kind and message, same `tuples_accessed`, and the same quota accounting —
//! across the query shapes of `parallel_semantics.rs`, serial and parallel
//! worker counts, and mixed Int / Float / Date / date-string / NULL data.
//!
//! [`ExecProfile::Alternating`] forces a mid-query fallback (kernels on even
//! morsels, the row path on odd ones), proving the two paths splice without
//! a seam; kernel errors and uncovered expressions (`LIKE`) exercise the
//! dynamic and static fallbacks respectively.

use beas::engine::ParallelConfig;
use beas::prelude::*;
use proptest::prelude::*;

/// Mixed-type float-key pool: ints-as-floats, fractional floats, negative
/// zero, NaN and NULLs — the values whose canonicalization has historically
/// diverged between execution paths.
fn float_key(choice: u64) -> Value {
    match choice % 8 {
        0 => Value::Float(1.0),
        1 => Value::Float(2.0),
        2 => Value::Float(2.5),
        3 => Value::Float(-0.0),
        4 => Value::Float(0.0),
        5 => Value::Null,
        6 => Value::Float(f64::NAN),
        _ => Value::Float(3.0),
    }
}

/// Date-shaped-string pool: parsable dates (which canonical join keys treat
/// as `Date`s), an unparsable date-shaped string (stays a string), a plain
/// string and NULL.
fn date_string(choice: u64) -> Value {
    match choice % 6 {
        0 => Value::str("2016-07-04"),
        1 => Value::str("2016-07-05"),
        2 => Value::str("2016-07-06"),
        3 => Value::str("2016-99-99"),
        4 => Value::Null,
        _ => Value::str("plain"),
    }
}

fn build_db(seed: u64, n1: usize, n2: usize) -> Database {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "t1",
            vec![
                beas::common::ColumnDef::nullable("kf", DataType::Float),
                beas::common::ColumnDef::new("ki", DataType::Int),
                beas::common::ColumnDef::new("tag", DataType::Str),
                beas::common::ColumnDef::nullable("ds", DataType::Str),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "t2",
            vec![
                beas::common::ColumnDef::nullable("kd", DataType::Date),
                beas::common::ColumnDef::new("name", DataType::Str),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    let tags = ["a", "b", "c"];
    for _ in 0..n1 {
        db.insert(
            "t1",
            vec![
                float_key(next()),
                Value::Int((next() % 5) as i64),
                Value::str(tags[(next() % 3) as usize]),
                date_string(next()),
            ],
        )
        .unwrap();
    }
    for i in 0..n2 {
        let kd = match next() % 5 {
            0 => Value::str("2016-07-04"),
            1 => Value::str("2016-07-05"),
            2 => Value::str("2016-07-06"),
            3 => Value::str("2016-07-07"),
            _ => Value::Null,
        };
        db.insert("t2", vec![kd, Value::str(format!("n{}", i % 4))])
            .unwrap();
    }
    db
}

/// The `parallel_semantics.rs` shapes, enriched with kernel-heavy
/// expressions: cross-family numeric comparison, a date-string ≡ date join,
/// `IN` / `BETWEEN` / `OR`, per-morsel pre-deduped DISTINCT, merge-exact and
/// serial-fold aggregation, and lazy LIMIT prefixes (which inhibit the
/// serial vectorized path by design).
fn query_shape(shape: usize, limit: usize) -> String {
    match shape % 8 {
        0 => "select ki, kf from t1 where kf = ki".to_string(),
        1 => format!("select distinct tag from t1 order by tag limit {limit}"),
        2 => "select t1.ki, t2.name from t1, t2 where t1.ds = t2.kd".to_string(),
        3 => format!(
            "select t1.ki from t1, t2 where t1.ds = t2.kd and t1.tag = 'b' \
             order by t1.ki desc limit {limit}"
        ),
        4 => "select tag, count(*), min(ki), max(ki), count(distinct kf) from t1 \
              group by tag order by tag"
            .to_string(),
        5 => format!("select distinct kf, ki from t1 order by ki, kf limit {limit}"),
        6 => "select ki, tag from t1 where ki in (1, 2, 4) or kf between 1 and 2".to_string(),
        _ => "select tag, sum(ki), avg(kf), count(distinct ki) from t1 group by tag order by tag"
            .to_string(),
    }
}

/// Forced-parallel configuration: racing workers over tiny morsels.  A
/// worker count of 1 is the serial pipeline (where the vectorized path runs
/// inside [`beas::engine::executor`]'s serial scan instead of the exchange).
fn config(workers: usize) -> ParallelConfig {
    ParallelConfig {
        workers,
        min_rows: 0,
        morsel_rows: 4,
    }
}

struct Run {
    result: beas::common::Result<QueryResult>,
    tuples_used: u64,
}

fn run(db: &Database, sql: &str, exec: ExecProfile, workers: usize, max_tuples: u64) -> Run {
    let tracker = ResourceQuota::unlimited()
        .with_max_tuples(max_tuples)
        .tracker();
    let result = Engine::default()
        .with_parallelism(config(workers))
        .with_exec_profile(exec)
        .run_with_quota(db, sql, Some(&tracker));
    Run {
        result,
        tuples_used: tracker.tuples_used(),
    }
}

/// Assert one vectorized run is bit-exact with its row-path reference.
/// `quota_tight` relaxes the accounting assertions: under a tripping quota
/// the two paths agree on the error kind and on never exceeding the budget
/// by more than one scheduling quantum, but the exact trip morsel may
/// differ on the parallel path (cooperative cancellation — the same
/// contract `execute_with_quota` documents for parallel vs serial).
fn assert_bit_exact(
    sql: &str,
    exec: ExecProfile,
    workers: usize,
    reference: &Run,
    candidate: &Run,
    quota_tight: bool,
) -> std::result::Result<(), proptest::test_runner::TestCaseError> {
    let ctx = format!("{sql} under {exec} ({workers} workers)");
    match (&reference.result, &candidate.result) {
        (Ok(r), Ok(c)) => {
            prop_assert_eq!(
                format!("{:?}", r.rows),
                format!("{:?}", c.rows),
                "rows diverged for {}",
                ctx
            );
            prop_assert_eq!(
                r.metrics.total_tuples_accessed(),
                c.metrics.total_tuples_accessed(),
                "tuples_accessed diverged for {}",
                ctx
            );
            prop_assert_eq!(
                reference.tuples_used,
                candidate.tuples_used,
                "quota accounting diverged for {}",
                ctx
            );
        }
        (Err(re), Err(ce)) => {
            prop_assert_eq!(re.kind(), ce.kind(), "error kind diverged for {}", ctx);
            if !quota_tight {
                // Without a tripping quota the error *message* (and with it
                // the error position baked into it) must match too: the
                // fallback re-runs the failing morsel on the row path.
                prop_assert_eq!(
                    re.to_string(),
                    ce.to_string(),
                    "error message diverged for {}",
                    ctx
                );
            }
        }
        (r, c) => prop_assert!(
            false,
            "success/error divergence for {}: row-path {:?}, vectorized {:?}",
            ctx,
            r.as_ref().map(|q| q.rows.len()),
            c.as_ref().map(|q| q.rows.len())
        ),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Vectorized ≡ row for every shape × profile × worker count, including
    /// the forced mid-query fallback ([`ExecProfile::Alternating`]).
    #[test]
    fn vectorized_matches_row_path(
        seed in 0u64..10_000,
        n1 in 0usize..48,
        n2 in 0usize..25,
        shape in 0usize..8,
        limit in 1usize..12,
    ) {
        let db = build_db(seed, n1, n2);
        let sql = query_shape(shape, limit);
        for workers in [1usize, 2, 4] {
            let reference = run(&db, &sql, ExecProfile::RowAtATime, workers, u64::MAX);
            for exec in [ExecProfile::Vectorized, ExecProfile::Alternating] {
                let candidate = run(&db, &sql, exec, workers, u64::MAX);
                assert_bit_exact(&sql, exec, workers, &reference, &candidate, false)?;
            }
        }
    }

    /// Same differential under a tight tuple quota: trips must surface with
    /// the same error kind and — serially, where the charge discipline is
    /// deterministic — the same message and the same `tuples_used`.
    #[test]
    fn vectorized_matches_row_path_under_quota(
        seed in 0u64..10_000,
        n1 in 4usize..48,
        shape in 0usize..8,
        max_tuples in 1u64..24,
    ) {
        let db = build_db(seed, n1, 12);
        let sql = query_shape(shape, 6);
        for workers in [1usize, 2, 4] {
            let reference = run(&db, &sql, ExecProfile::RowAtATime, workers, max_tuples);
            for exec in [ExecProfile::Vectorized, ExecProfile::Alternating] {
                let candidate = run(&db, &sql, exec, workers, max_tuples);
                assert_bit_exact(&sql, exec, workers, &reference, &candidate, true)?;
            }
        }
    }

    /// The batch layout invariants hold for every morsel the engine could
    /// build from mixed-type rows, and the columnar view reads back exactly
    /// the row-major values (the validator also runs inside the engine on
    /// every batch under debug_assertions / `--features validate`).
    #[test]
    fn column_batches_validate_and_round_trip(
        seed in 0u64..10_000,
        n in 0usize..200,
    ) {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let rows: Vec<Row> = (0..n)
            .map(|_| vec![
                float_key(next()),
                Value::Int((next() % 5) as i64),
                date_string(next()),
            ])
            .collect();
        let batch = beas::common::ColumnBatch::from_rows(&rows);
        #[cfg(any(debug_assertions, feature = "validate"))]
        batch.check_invariants().unwrap();
        prop_assert_eq!(batch.len(), rows.len());
        prop_assert_eq!(batch.arity(), 3);
        for (i, row) in rows.iter().enumerate() {
            for (c, expected) in row.iter().enumerate() {
                let got = batch.column(c).unwrap().value_owned(i);
                prop_assert_eq!(
                    format!("{:?}", got),
                    format!("{:?}", expected),
                    "cell ({}, {})",
                    i,
                    c
                );
            }
        }
    }
}

/// A serial scan-quota trip is *fully* deterministic: same error message
/// (including the reported usage) and the same final `tuples_used` — the
/// budget plus the one tuple whose charge tripped — on every profile.
#[test]
fn serial_quota_trip_is_bit_exact() {
    let db = build_db(3, 40, 0);
    let sql = "select ki, tag from t1 where ki in (1, 2, 4) or kf between 1 and 2";
    let reference = run(&db, sql, ExecProfile::RowAtATime, 1, 10);
    let ref_err = reference.result.expect_err("quota must trip");
    assert_eq!(ref_err.kind(), "quota_exceeded");
    assert_eq!(reference.tuples_used, 11);
    for exec in [ExecProfile::Vectorized, ExecProfile::Alternating] {
        let candidate = run(&db, sql, exec, 1, 10);
        let err = candidate.result.expect_err("quota must trip");
        assert_eq!(err.to_string(), ref_err.to_string(), "{exec}");
        assert_eq!(candidate.tuples_used, reference.tuples_used, "{exec}");
    }
}

/// `LIKE` is deliberately uncovered by the kernels: the fragment takes the
/// static row-path fallback and still matches the reference bit for bit.
#[test]
fn uncovered_like_falls_back_statically() {
    let db = build_db(5, 40, 0);
    let sql = "select ki, tag from t1 where tag like '%a%' and ki > 1";
    let reference = run(&db, sql, ExecProfile::RowAtATime, 1, u64::MAX);
    let expected = reference.result.unwrap();
    for workers in [1usize, 3] {
        for exec in [ExecProfile::Vectorized, ExecProfile::Alternating] {
            let got = run(&db, sql, exec, workers, u64::MAX).result.unwrap();
            assert_eq!(
                format!("{:?}", expected.rows),
                format!("{:?}", got.rows),
                "{exec} ({workers} workers)"
            );
            // Static fallback: the kernels never ran, so no Vectorized
            // marker appears in the plan metrics.
            assert!(
                !got.metrics.render().contains("Vectorized("),
                "{exec}: LIKE fragment must not take the kernel path"
            );
        }
    }
}

/// The kernel path actually engages (guards against a vacuously-green
/// differential): a covered serial fragment reports its batch count, and a
/// type error that the kernels over-detect re-runs on the row path with the
/// identical error message.
#[test]
fn kernels_engage_and_errors_reproduce_exactly() {
    let db = build_db(9, 40, 0);
    let covered = "select ki from t1 where tag = 'a'";
    let got = run(&db, covered, ExecProfile::Vectorized, 1, u64::MAX)
        .result
        .unwrap();
    let rendered = got.metrics.render();
    assert!(
        rendered.contains("Vectorized(batches=") && rendered.contains("fallbacks=0"),
        "covered serial fragment must run on the kernel path:\n{rendered}"
    );

    // tag > 5 type-errors on the first row of the first morsel; the kernel
    // detects it batch-wide, falls back, and the row path reproduces the
    // serial error exactly.
    let erroring = "select ki from t1 where tag > 5";
    let reference = run(&db, erroring, ExecProfile::RowAtATime, 1, u64::MAX);
    let ref_err = reference.result.expect_err("type error");
    for exec in [ExecProfile::Vectorized, ExecProfile::Alternating] {
        let candidate = run(&db, erroring, exec, 1, u64::MAX);
        let err = candidate.result.expect_err("type error");
        assert_eq!(err.to_string(), ref_err.to_string(), "{exec}");
        assert_eq!(candidate.tuples_used, reference.tuples_used, "{exec}");
    }
}
