//! Guards the facade against re-export collisions: `beas_core` and
//! `beas_engine` both define `plan`, `planner` and `executor` modules, so a
//! careless glob re-export in the facade would make `use beas::prelude::*`
//! ambiguous.  This test glob-imports the prelude and then *uses* items from
//! both the bounded and the conventional layer by their bare names — if any
//! name were exported twice the file would fail to compile.

use beas::prelude::*;

/// Referencing the mirrored module families through their aliased paths must
/// name distinct types.
fn bounded_plan_of(system: &BeasSystem, sql: &str) -> beas::bounded_plan::BoundedPlan {
    system.check(sql).unwrap().plan.expect("query is covered")
}

#[test]
fn prelude_glob_reaches_both_layers_unambiguously() {
    let db = beas::tlc::tiny_database(120);
    let system = BeasSystem::with_schema(db, beas::tlc::tlc_access_schema()).unwrap();

    let (btype, region, pid, date) = beas::tlc::default_params();
    let q1 = beas::tlc::example2_query(btype, region, pid, date);

    // Bounded layer, by bare prelude names.
    let report: CheckReport = system.check(&q1).unwrap();
    assert!(report.covered);
    let plan: BoundedPlan = bounded_plan_of(&system, &q1);
    assert!(!plan.fetches.is_empty());
    let outcome: ExecutionOutcome = system.execute_sql(&q1).unwrap();
    assert!(outcome.bounded);

    // Conventional layer, by bare prelude names, over the same database.
    let engine = Engine::new(OptimizerProfile::PgLike);
    let result: QueryResult = engine.run(system.database(), &q1).unwrap();
    let _metrics: &ExecutionMetrics = &result.metrics;
    assert!(!engine.explain(system.database(), &q1).unwrap().is_empty());

    // Values/rows from `beas_common` resolve too.
    let v = Value::str("east");
    assert_eq!(v.render(), "east");
    let _d: Date = "2016-07-04".parse().unwrap();
}

#[test]
fn aliased_module_families_are_distinct() {
    // The aliases must point at the two different layers, not the same one:
    // the bounded plan type lives only under `bounded_plan`, the logical plan
    // type only under `engine_plan`.
    fn assert_types_exist(
        _: Option<beas::bounded_plan::BoundedPlan>,
        _: Option<beas::bounded_plan::PlannedFetch>,
        _: Option<beas::engine_plan::LogicalPlan>,
        _: Option<beas::engine_plan::JoinAlgorithm>,
    ) {
    }
    assert_types_exist(None, None, None, None);
}
