//! NULL join-key semantics, pinned on both engines (ROADMAP open item).
//!
//! SQL equality never matches NULL — `a.k = b.k` is *unknown* when either
//! side is NULL, so NULL-keyed rows join nothing.  The constraint indices,
//! however, group NULL keys into a bucket (DISTINCT semantics), so the
//! bounded fetch path must explicitly *skip* NULL fetch keys or it would
//! resurrect rows the baseline excludes.  These tests pin the agreement on
//! data that exercises exactly that divergence.

use beas::prelude::*;

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let o = x.total_cmp(y);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

/// call/business with NULL pnums on both sides: a NULL-pnum business and a
/// NULL-pnum call must never pair up, on any path.
fn null_heavy_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "call",
            vec![
                beas::common::ColumnDef::nullable("pnum", DataType::Str),
                beas::common::ColumnDef::new("recnum", DataType::Str),
                beas::common::ColumnDef::new("date", DataType::Date),
                beas::common::ColumnDef::new("region", DataType::Str),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "business",
            vec![
                beas::common::ColumnDef::nullable("pnum", DataType::Str),
                beas::common::ColumnDef::new("type", DataType::Str),
                beas::common::ColumnDef::new("region", DataType::Str),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    for (p, t) in [
        (Value::str("b1"), "bank"),
        (Value::Null, "bank"),
        (Value::Null, "bank"),
        (Value::str("b2"), "bank"),
        (Value::str("b3"), "shop"),
    ] {
        db.insert("business", vec![p, Value::str(t), Value::str("r0")])
            .unwrap();
    }
    for (p, rec, reg) in [
        (Value::str("b1"), "x", "east"),
        (Value::str("b1"), "y", "west"),
        (Value::Null, "null1", "north"),
        (Value::Null, "null2", "south"),
        (Value::str("b2"), "z", "east"),
        (Value::str("b9"), "w", "east"),
    ] {
        db.insert(
            "call",
            vec![
                p,
                Value::str(rec),
                Value::str("2016-07-04"),
                Value::str(reg),
            ],
        )
        .unwrap();
    }
    db
}

const QUERY: &str = "select distinct call.recnum from call, business \
    where business.type = 'bank' and business.region = 'r0' \
    and business.pnum = call.pnum and call.date = '2016-07-04'";

#[test]
fn baseline_profiles_agree_null_keys_never_join() {
    let db = null_heavy_db();
    // hash join (pg-like) and nested-loop (maria-like) must agree
    let mut answers = Vec::new();
    for profile in OptimizerProfile::all() {
        let result = Engine::new(profile).run(&db, QUERY).unwrap();
        answers.push(sorted(result.rows));
    }
    for a in &answers[1..] {
        assert_eq!(&answers[0], a);
    }
    // only the non-NULL matches: b1's two calls and b2's one
    assert_eq!(
        answers[0],
        vec![
            vec![Value::str("x")],
            vec![Value::str("y")],
            vec![Value::str("z")],
        ]
    );
}

#[test]
fn bounded_fetch_skips_null_keys_like_the_baseline() {
    let db = null_heavy_db();
    let schema = AccessSchema::from_constraints(vec![
        AccessConstraint::new("call", &["pnum", "date"], &["recnum", "region"], 500).unwrap(),
        AccessConstraint::new("business", &["type", "region"], &["pnum"], 2000).unwrap(),
    ]);
    let system = BeasSystem::with_schema(db, schema).unwrap();
    let report = system.check(QUERY).unwrap();
    assert!(
        report.covered,
        "query must be covered: {:?}",
        report.coverage.reasons
    );
    let outcome = system.execute_sql(QUERY).unwrap();
    assert!(outcome.bounded);
    let baseline = Engine::default().run(system.database(), QUERY).unwrap();
    assert_eq!(sorted(outcome.rows.clone()), sorted(baseline.rows));
    // the NULL-keyed calls must not appear even though the index holds a
    // NULL bucket for them
    assert!(outcome
        .rows
        .iter()
        .all(|r| r[0] != Value::str("null1") && r[0] != Value::str("null2")));
}

#[test]
fn approximation_also_skips_null_keys() {
    let db = null_heavy_db();
    let schema = AccessSchema::from_constraints(vec![
        AccessConstraint::new("call", &["pnum", "date"], &["recnum", "region"], 500).unwrap(),
        AccessConstraint::new("business", &["type", "region"], &["pnum"], 2000).unwrap(),
    ]);
    let system = BeasSystem::with_schema(db, schema).unwrap();
    let approx = system.approximate(QUERY, 1_000_000).unwrap();
    assert!((approx.coverage - 1.0).abs() < 1e-9);
    let baseline = Engine::default().run(system.database(), QUERY).unwrap();
    assert_eq!(sorted(approx.rows), sorted(baseline.rows));
}
