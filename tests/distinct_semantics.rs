//! Set-semantics edge cases for `DISTINCT` / dedupe value hashing.
//!
//! Distinct answers flow through hash sets keyed by `Value`, so `Eq`/`Hash`
//! consistency is load-bearing: `0.0` and `-0.0` compare equal and must
//! collapse to one row, `NaN` never equals anything (itself included) and
//! must not collapse, and `Int`-valued `Float`s share the numeric family's
//! hash.  Each case is pinned on *both* execution paths — the bounded
//! executor's context dedupe and the baseline engine's `Distinct` operator —
//! which must agree row for row.

use beas::common::{dedupe, ColumnDef};
use beas::prelude::*;
use std::cmp::Ordering;

fn float_db() -> (Database, AccessSchema) {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "m",
            vec![
                ColumnDef::new("pnum", DataType::Str),
                ColumnDef::new("val", DataType::Float),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    for v in [0.0, -0.0, f64::NAN, f64::NAN, 1.0, 1.0, 2.5] {
        db.insert("m", vec![Value::str("a"), Value::Float(v)])
            .unwrap();
    }
    db.insert("m", vec![Value::str("b"), Value::Float(3.0)])
        .unwrap();
    // A NaN-free table for predicates over the float column: the baseline
    // full-scans its input, so a NaN anywhere in a compared column is a
    // query-wide type error (NaN comparisons are "unknown" on both engines).
    db.create_table(
        TableSchema::new(
            "z",
            vec![
                ColumnDef::new("pnum", DataType::Str),
                ColumnDef::new("val", DataType::Float),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    for v in [0.0, -0.0, 7.5] {
        db.insert("z", vec![Value::str("z"), Value::Float(v)])
            .unwrap();
    }
    let schema = AccessSchema::from_constraints(vec![
        AccessConstraint::new("m", &["pnum"], &["val"], 10).unwrap(),
        AccessConstraint::new("z", &["pnum"], &["val"], 10).unwrap(),
    ]);
    (db, schema)
}

/// Rows may contain NaN, which is never `==` itself — compare via the total
/// order instead.
fn assert_same_rows(mut a: Vec<Row>, mut b: Vec<Row>) {
    let cmp = |x: &Row, y: &Row| {
        x.iter()
            .zip(y.iter())
            .map(|(u, v)| u.total_cmp(v))
            .find(|o| *o != Ordering::Equal)
            .unwrap_or_else(|| x.len().cmp(&y.len()))
    };
    a.sort_by(cmp);
    b.sort_by(cmp);
    assert_eq!(a.len(), b.len(), "row counts differ: {a:?} vs {b:?}");
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.len(), y.len());
        assert!(
            x.iter()
                .zip(y.iter())
                .all(|(u, v)| u.total_cmp(v) == Ordering::Equal),
            "rows differ: {x:?} vs {y:?}"
        );
    }
}

#[test]
fn distinct_float_edge_cases_agree_on_both_paths() {
    let (db, schema) = float_db();
    let sql = "select distinct val from m where pnum = 'a'";

    let baseline = Engine::default().run(&db, sql).unwrap();
    let system = BeasSystem::with_schema(db, schema).unwrap();
    let outcome = system.execute_sql(sql).unwrap();
    assert!(outcome.bounded);

    // 0.0 and -0.0 collapse; the two NaNs do not; duplicate 1.0 collapses:
    // {0.0, NaN, NaN, 1.0, 2.5}
    assert_eq!(baseline.rows.len(), 5);
    assert_same_rows(outcome.rows, baseline.rows);
}

#[test]
fn group_by_collapses_signed_zero_on_both_paths() {
    let (db, schema) = float_db();
    // 0.0 and -0.0 must form ONE group of size 2 (eq values must hash equal)
    let sql = "select val, count(*) from z where pnum = 'z' and val < 1 group by val";

    let baseline = Engine::default().run(&db, sql).unwrap();
    assert_eq!(baseline.rows.len(), 1);
    assert_eq!(baseline.rows[0][1], Value::Int(2));

    let system = BeasSystem::with_schema(db, schema).unwrap();
    let outcome = system.execute_sql(sql).unwrap();
    assert_same_rows(outcome.rows, baseline.rows);
}

#[test]
fn dedupe_treats_int_valued_floats_as_one_key() {
    // Int(1) and Float(1.0) compare equal and must therefore dedupe to a
    // single row; Float(1.5) stays distinct.
    let rows = vec![
        vec![Value::Int(1)],
        vec![Value::Float(1.0)],
        vec![Value::Float(1.5)],
        vec![Value::Int(1)],
    ];
    let out = dedupe(rows);
    assert_eq!(out, vec![vec![Value::Int(1)], vec![Value::Float(1.5)]]);

    // signed zero: one survivor across representations
    let zeros = vec![
        vec![Value::Float(-0.0)],
        vec![Value::Float(0.0)],
        vec![Value::Int(0)],
    ];
    assert_eq!(dedupe(zeros).len(), 1);

    // NaN never equals itself: nothing collapses
    let nans = vec![vec![Value::Float(f64::NAN)], vec![Value::Float(f64::NAN)]];
    assert_eq!(dedupe(nans).len(), 2);
}
