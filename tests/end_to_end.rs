//! Cross-crate integration tests: SQL in, answers out, through both the
//! conventional engine and BEAS, on generated TLC data.

use beas::prelude::*;

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let o = x.total_cmp(y);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

fn distinct(rows: Vec<Row>) -> Vec<Row> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for r in rows {
        if seen.insert(r.clone()) {
            out.push(r);
        }
    }
    out
}

fn tlc_system(scale: u32) -> BeasSystem {
    let db = beas::tlc::generate(&beas::tlc::TlcConfig::at_scale(scale)).unwrap();
    BeasSystem::with_schema(db, beas::tlc::tlc_access_schema()).unwrap()
}

#[test]
fn all_eleven_tlc_queries_run_and_match_the_baseline() {
    let system = tlc_system(2);
    let engine = Engine::new(OptimizerProfile::PgLike);
    for q in beas::tlc::all_queries() {
        let report = system.check(&q.sql).unwrap();
        assert_eq!(
            report.covered, q.expect_covered,
            "{}: coverage expectation mismatch ({:?})",
            q.id, report.coverage.reasons
        );
        let outcome = system.execute_sql(&q.sql).unwrap();
        let baseline = engine.run(system.database(), &q.sql).unwrap();
        // BEAS computes set-semantics answers; the benchmark queries are
        // written with DISTINCT / distinct-safe aggregates so the comparison
        // is exact, except that we normalize row order.
        assert_eq!(
            sorted(outcome.rows.clone()),
            sorted(distinct(baseline.rows.clone())),
            "{}: answers differ",
            q.id
        );
        if report.covered {
            assert!(outcome.bounded, "{} should run bounded", q.id);
            assert!(
                outcome.tuples_accessed <= report.deduced_bound.unwrap(),
                "{}: accessed {} tuples, deduced bound {}",
                q.id,
                outcome.tuples_accessed,
                report.deduced_bound.unwrap()
            );
            assert!(
                outcome.tuples_accessed < baseline.metrics.total_tuples_accessed(),
                "{}: bounded run should touch less data than the full scans",
                q.id
            );
        }
    }
}

#[test]
fn more_than_ninety_percent_of_the_workload_is_covered() {
    let system = tlc_system(1);
    let queries = beas::tlc::all_queries();
    let covered = queries
        .iter()
        .filter(|q| system.check(&q.sql).unwrap().covered)
        .count();
    assert!(covered * 100 / queries.len() >= 90);
}

#[test]
fn bounded_access_is_scale_independent_while_baseline_grows() {
    let (btype, region, pid, date) = beas::tlc::default_params();
    let q1 = beas::tlc::example2_query(btype, region, pid, date);
    let mut beas_access = Vec::new();
    let mut baseline_access = Vec::new();
    for scale in [1u32, 4] {
        let system = tlc_system(scale);
        let outcome = system.execute_sql(&q1).unwrap();
        let baseline = Engine::default().run(system.database(), &q1).unwrap();
        beas_access.push(outcome.tuples_accessed);
        baseline_access.push(baseline.metrics.total_tuples_accessed());
    }
    // the baseline scans ~4x more data at 4x scale…
    assert!(baseline_access[1] >= baseline_access[0] * 3);
    // …while the bounded plan's data access stays within the same order
    assert!(beas_access[1] <= beas_access[0] * 2 + 16);
}

#[test]
fn budget_checks_and_approximation_work_end_to_end() {
    let system = tlc_system(1);
    let (btype, region, pid, date) = beas::tlc::default_params();
    let q1 = beas::tlc::example2_query(btype, region, pid, date);
    let report = system.check(&q1).unwrap();
    let bound = report.deduced_bound.unwrap();
    assert!(system.can_answer_within(&q1, bound).unwrap());
    assert!(!system.can_answer_within(&q1, 10).unwrap());
    let exact = system.execute_sql(&q1).unwrap();
    let approx = system.approximate(&q1, bound).unwrap();
    assert_eq!(sorted(approx.rows.clone()), sorted(exact.rows.clone()));
    assert!((approx.coverage - 1.0).abs() < 1e-9);
    let tight = system.approximate(&q1, 50).unwrap();
    assert!(tight.tuples_accessed <= 50);
    assert!(tight.coverage <= 1.0);
}

#[test]
fn discovered_schema_supports_bounded_evaluation() {
    let db = beas::tlc::generate(&beas::tlc::TlcConfig::at_scale(1)).unwrap();
    let system = BeasSystem::from_discovery(
        db,
        &beas::tlc::workload(),
        &beas::access::DiscoveryConfig::default(),
    )
    .unwrap();
    assert!(!system.access_schema().is_empty());
    let covered = beas::tlc::all_queries()
        .iter()
        .filter(|q| system.check(&q.sql).unwrap().covered)
        .count();
    // the discovered schema covers a solid majority of the workload
    assert!(covered >= 6, "only {covered} of 11 covered");
    // and the covered queries still return baseline-identical answers
    let engine = Engine::default();
    for q in beas::tlc::all_queries() {
        if system.check(&q.sql).unwrap().covered {
            let outcome = system.execute_sql(&q.sql).unwrap();
            let baseline = engine.run(system.database(), &q.sql).unwrap();
            assert_eq!(
                sorted(outcome.rows),
                sorted(distinct(baseline.rows)),
                "{}",
                q.id
            );
        }
    }
}

#[test]
fn maintenance_keeps_bounded_answers_correct_under_updates() {
    let mut db = beas::tlc::generate(&beas::tlc::TlcConfig::at_scale(1)).unwrap();
    let mut schema = beas::tlc::tlc_access_schema();
    let mut indexes = beas::access::build_indexes(&db, &schema).unwrap();
    let maintainer = beas::access::Maintainer::new(beas::access::MaintenancePolicy::AutoAdjust);

    // Insert fresh call records for a bank number on the benchmark date.
    let new_rows: Vec<Row> = db
        .table("call")
        .unwrap()
        .rows_iter()
        .take(50)
        .cloned()
        .collect();
    maintainer
        .insert_rows(&mut db, &mut schema, &mut indexes, "call", new_rows)
        .unwrap();
    // Delete some of the original rows.
    maintainer
        .delete_rows(&mut db, &schema, &mut indexes, "call", |r| {
            r[4].as_int().unwrap_or(0) % 97 == 0
        })
        .unwrap();

    let system = BeasSystem::new(db.clone(), schema.clone(), indexes);
    let (btype, region, pid, date) = beas::tlc::default_params();
    let q1 = beas::tlc::example2_query(btype, region, pid, date);
    let outcome = system.execute_sql(&q1).unwrap();
    let baseline = Engine::default().run(&db, &q1).unwrap();
    assert_eq!(sorted(outcome.rows), sorted(distinct(baseline.rows)));
}

#[test]
fn conformance_violations_are_detected_on_tlc_data() {
    let db = beas::tlc::generate(&beas::tlc::TlcConfig::at_scale(1)).unwrap();
    // An absurdly tight bound must be reported as a violation.
    let mut schema = beas::tlc::tlc_access_schema();
    schema.add(beas::access::AccessConstraint::new("call", &["region"], &["pnum"], 1).unwrap());
    let report = beas::access::check_conformance(&db, &schema).unwrap();
    assert!(!report.conforms());
    assert!(beas::access::require_conformance(&db, &schema).is_err());
}
