#![forbid(unsafe_code)]
//! # BEAS — Bounded Evaluation of SQL Queries
//!
//! A from-scratch Rust reproduction of the BEAS system (SIGMOD 2017 demo):
//! querying relations with *bounded resources* under an access schema — a set
//! of cardinality constraints with associated indices.
//!
//! This facade crate re-exports the public API of the workspace crates so
//! that applications can depend on a single `beas` crate:
//!
//! * [`obs`] — low-overhead tracing, timing and metrics export;
//! * [`common`] — values, types, schemas, tuples;
//! * [`sql`] — SQL lexer/parser/binder for the supported fragment;
//! * [`storage`] — in-memory tables, catalog and indices;
//! * [`engine`] — the conventional (baseline) DBMS engine;
//! * [`access`] — access constraints, conformance, discovery, maintenance;
//! * [`core`] — the BEAS bounded-evaluation layer (checker, planner, executor);
//! * [`tlc`] — the TLC telecom benchmark used in the paper's evaluation.
//!
//! ## Quick example
//!
//! ```
//! use beas::prelude::*;
//!
//! // A small TLC database (Example 1's schema plus the other 9 relations).
//! let db = beas::tlc::tiny_database(200);
//! let access_schema = beas::tlc::tlc_access_schema();
//!
//! // Build the constraint indices and assemble the BEAS system.
//! let system = BeasSystem::with_schema(db, access_schema).unwrap();
//!
//! // Q1 is the query of Example 2 in the paper; it is boundedly evaluable.
//! let (btype, region, pid, date) = beas::tlc::default_params();
//! let q1 = beas::tlc::example2_query(btype, region, pid, date);
//! assert!(system.check(&q1).unwrap().covered);
//! let outcome = system.execute_sql(&q1).unwrap();
//! assert!(outcome.bounded);
//! ```

pub use beas_access as access;
pub use beas_common as common;
pub use beas_core as core;
pub use beas_engine as engine;
pub use beas_obs as obs;
pub use beas_service as service;
pub use beas_sql as sql;
pub use beas_storage as storage;
pub use beas_tlc as tlc;

// `beas_core` and `beas_engine` both expose `plan`, `planner` and `executor`
// modules — the bounded layer and the conventional layer mirror each other by
// design.  Re-export each family under a distinct top-level name so callers
// can reach either without spelling out `beas::core::plan` vs
// `beas::engine::plan`, and so no pair of facade re-exports collides.
pub use beas_core::{
    executor as bounded_executor, plan as bounded_plan, planner as bounded_planner,
};
pub use beas_engine::{
    executor as engine_executor, plan as engine_plan, planner as engine_planner,
};

/// Commonly used items, for glob import in examples and applications.
///
/// Every name here is re-exported exactly once (selective re-exports, never
/// two globs over the mirrored `core`/`engine` module trees), so
/// `use beas::prelude::*` can never produce an ambiguous-name error.
pub mod prelude {
    pub use beas_access::{AccessConstraint, AccessSchema};
    pub use beas_common::{BeasError, DataType, Date, Result, Row, Schema, TableSchema, Value};
    pub use beas_common::{QuotaTracker, ResourceQuota};
    pub use beas_core::QueryAnalysis;
    pub use beas_core::{
        BeasSystem, BoundedPlan, CheckReport, CoverageResult, EvaluationMode, ExecutionOutcome,
    };
    pub use beas_engine::{
        Engine, EngineAnalysis, ExecProfile, ExecutionMetrics, LogicalPlan, OptimizerProfile,
        QueryResult,
    };
    pub use beas_obs::{set_trace_level, trace_level, TraceLevel};
    pub use beas_service::{Decision, QueryService, Session, SessionOutcome, SubmissionTrace};
    pub use beas_storage::{Database, Table};
}
