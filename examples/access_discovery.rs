//! Access-schema discovery and maintenance — the AS Catalog's offline
//! services (demo scenario 1(d)).
//!
//! Discovers an access schema from the TLC data and its query workload under
//! a storage budget, registers it with the catalog, then exercises
//! incremental maintenance under inserts and a bound re-adjustment pass.
//!
//! ```bash
//! cargo run --release --example access_discovery
//! ```

use beas::access::{AsCatalog, DiscoveryConfig, MaintenancePolicy};
use beas::prelude::*;

fn main() -> Result<()> {
    let db = beas::tlc::generate(&beas::tlc::TlcConfig::at_scale(2))?;
    let workload = beas::tlc::workload();

    // Discover under an index storage budget.
    let mut catalog = AsCatalog::new();
    let config = DiscoveryConfig {
        storage_budget_bytes: Some(4 * 1024 * 1024),
        ..Default::default()
    };
    let (report, registered) = catalog.discover_and_register("tlc", &db, &workload, &config)?;
    println!(
        "discovery considered {} candidates, selected {} constraints (~{} KiB of indices)",
        report.candidates.len(),
        report.selected.len(),
        report.total_bytes / 1024
    );
    let (schema, indexes) = (registered.schema.clone(), registered.indexes.clone());
    println!("\ndiscovered access schema:\n{schema}");
    println!("\ncatalog metadata:\n{}", catalog.metadata_text());

    // How much of the workload does the discovered schema cover?
    let system = BeasSystem::with_schema(db.clone(), schema.clone())?;
    let covered = workload
        .iter()
        .filter(|sql| system.check(sql).map(|r| r.covered).unwrap_or(false))
        .count();
    println!(
        "\n{covered} of {} workload queries are covered by the discovered schema",
        workload.len()
    );

    // Incremental maintenance: insert new call records and keep indices fresh.
    let mut db = db;
    let mut schema = schema;
    let mut indexes = indexes;
    let maintainer = catalog.maintainer(MaintenancePolicy::AutoAdjust);
    let new_calls: Vec<beas::common::Row> = (0..100)
        .map(|i| {
            let mut row = db.table("call").unwrap().row(i).unwrap().clone();
            row[2] = Value::str("2016-07-28"); // a fresh day
            row
        })
        .collect();
    let outcome = maintainer.insert_rows(&mut db, &mut schema, &mut indexes, "call", new_calls)?;
    println!(
        "\nmaintenance: inserted {} rows, adjusted {} bounds, flagged {} violations",
        outcome.rows_affected,
        outcome.adjusted.len(),
        outcome.flagged.len()
    );

    // Periodic re-validation and bound adjustment.
    let conformance = maintainer.revalidate(&db, &schema)?;
    println!("\nconformance after maintenance:\n{conformance}");
    let changes = maintainer.adjust_bounds(&db, &mut schema, 1.5)?;
    println!("bound adjustments (id, old, new): {changes:?}");
    Ok(())
}
