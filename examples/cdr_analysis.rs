//! CDR (call detail record) analysis — the demo's industry scenario.
//!
//! Walks the whole TLC workload (Q1–Q11) through BEAS: coverage check,
//! bounded or partially bounded execution, and a Fig. 3-style performance
//! analysis against the three baseline optimizer profiles.
//!
//! ```bash
//! cargo run --release --example cdr_analysis
//! ```

use beas::prelude::*;

fn main() -> Result<()> {
    let db = beas::tlc::generate(&beas::tlc::TlcConfig::at_scale(3))?;
    let system = BeasSystem::with_schema(db, beas::tlc::tlc_access_schema())?;

    let mut covered = 0usize;
    println!(
        "{:<4} {:<9} {:>9} {:>16} {:>14}  description",
        "id", "mode", "answers", "tuples accessed", "deduced bound"
    );
    for q in beas::tlc::all_queries() {
        let report = system.check(&q.sql)?;
        let outcome = system.execute_sql(&q.sql)?;
        if report.covered {
            covered += 1;
        }
        println!(
            "{:<4} {:<9} {:>9} {:>16} {:>14}  {}",
            q.id,
            match outcome.mode {
                beas::core::EvaluationMode::Bounded => "bounded",
                beas::core::EvaluationMode::PartiallyBounded => "partial",
                beas::core::EvaluationMode::Conventional => "dbms",
            },
            outcome.rows.len(),
            outcome.tuples_accessed,
            report
                .deduced_bound
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".to_string()),
            q.description
        );
    }
    println!(
        "\n{covered} of 11 queries are boundedly evaluable under the TLC access schema ({}%)",
        covered * 100 / 11
    );

    // Detailed Fig. 3-style analysis of Q1 (Example 2).
    let (btype, region, pid, date) = beas::tlc::default_params();
    let q1 = beas::tlc::example2_query(btype, region, pid, date);
    println!("\n================ performance analysis of Q1 (Example 2) ================\n");
    let analysis = system.analyze(&q1)?;
    println!("{analysis}");

    // Resource-bounded approximation when only a tiny budget is affordable.
    let approx = system.approximate(&q1, 500)?;
    println!(
        "approximate answer under a 500-tuple budget: {} rows, coverage ≥ {:.2}, tuples accessed = {}",
        approx.rows.len(),
        approx.coverage,
        approx.tuples_accessed
    );
    Ok(())
}
