//! Explain-analyze walkthrough: the Fig. 3-style per-operator cost
//! breakdown for one *covered* TLC query (bounded fetch pipeline vs the
//! baseline operator tree) and one *uncovered* query (conventional on both
//! sides), plus the per-submission admission trace a service session
//! records — trace id, plan-cache outcome, deduced bound vs budget, quota
//! spend and per-stage spans.
//!
//! ```bash
//! cargo run --release --example explain_analyze
//! ```

use beas::prelude::*;

fn main() -> Result<()> {
    // Spans in the admission trace carry real durations only under Timing.
    let previous = set_trace_level(TraceLevel::Timing);

    let db = beas::tlc::tiny_database(200);
    let system = BeasSystem::with_schema(db, beas::tlc::tlc_access_schema())?;

    // A covered query: Example 2 of the paper, boundedly evaluable.
    let (btype, region, pid, date) = beas::tlc::default_params();
    let covered = beas::tlc::example2_query(btype, region, pid, date);
    println!("== covered query ==\n");
    println!("{}", system.explain_analyze(&covered)?);

    // An uncovered aggregate: no constraint covers a full-table group-by,
    // so both sides run the conventional operator tree.
    let uncovered = "SELECT call.region, COUNT(*) AS n FROM call \
         WHERE call.duration > 10 \
         GROUP BY call.region ORDER BY call.region";
    println!("\n== uncovered query ==\n");
    println!("{}", system.explain_analyze(uncovered)?);

    // The same covered query through a service session: the submission
    // trace stamps admission -> plan cache -> execution with one trace id.
    let service = QueryService::new(BeasSystem::with_schema(
        beas::tlc::tiny_database(200),
        beas::tlc::tlc_access_schema(),
    )?);
    let session = service.session(ResourceQuota::unlimited().with_max_tuples(50_000_000));
    session.execute(&covered)?; // cold: plan-cache miss
    let outcome = session.execute(&covered)?; // warm: cache hit
    println!("\n== admission trace (warm submission) ==\n");
    println!("{}", outcome.trace);
    println!("{}", service.metrics());

    set_trace_level(previous);
    Ok(())
}
