//! Scale independence (Fig. 4, from the public API).
//!
//! Runs Q1 (Example 2) at growing scale factors through BEAS and through the
//! pg-like baseline profile: BEAS's cost stays flat while the conventional
//! engine grows with `|D|`.
//!
//! ```bash
//! cargo run --release --example scale_independence
//! ```

use beas::prelude::*;
use std::time::Instant;

fn main() -> Result<()> {
    let (btype, region, pid, date) = beas::tlc::default_params();
    let q1 = beas::tlc::example2_query(btype, region, pid, date);

    println!(
        "{:>5} {:>10} | {:>12} {:>16} | {:>12} {:>16}",
        "scale", "rows", "BEAS time", "BEAS tuples", "DBMS time", "DBMS tuples"
    );
    for scale in [1u32, 2, 4, 8, 16] {
        let db = beas::tlc::generate(&beas::tlc::TlcConfig::at_scale(scale))?;
        let rows = db.total_rows();
        let baseline_db = db.clone();
        let system = BeasSystem::with_schema(db, beas::tlc::tlc_access_schema())?;

        let t = Instant::now();
        let outcome = system.execute_sql(&q1)?;
        let beas_time = t.elapsed();

        let engine = Engine::new(OptimizerProfile::PgLike);
        let t = Instant::now();
        let baseline = engine.run(&baseline_db, &q1)?;
        let dbms_time = t.elapsed();

        assert_eq!(outcome.rows.len(), baseline.rows.len());
        println!(
            "{:>5} {:>10} | {:>12} {:>16} | {:>12} {:>16}",
            scale,
            rows,
            format!("{:.2?}", beas_time),
            outcome.tuples_accessed,
            format!("{:.2?}", dbms_time),
            baseline.metrics.total_tuples_accessed()
        );
    }
    println!("\nBEAS's tuples-accessed column is bounded by the access schema and the query only;");
    println!("the conventional engine's grows linearly with the database.");
    Ok(())
}
