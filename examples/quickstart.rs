//! Quickstart: build a TLC database, register an access schema, check
//! bounded evaluability and run a query both through BEAS and through the
//! conventional engine.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use beas::prelude::*;

fn main() -> Result<()> {
    // 1. Generate a small TLC telecom dataset (12 relations, 285 attributes).
    let config = beas::tlc::TlcConfig::at_scale(2);
    let db = beas::tlc::generate(&config)?;
    println!(
        "generated TLC at scale factor {}: {} tables, {} rows, ~{} KiB",
        config.scale_factor,
        db.table_names().len(),
        db.total_rows(),
        db.estimated_bytes() / 1024
    );

    // 2. Register the TLC access schema and build its constraint indices.
    let access_schema = beas::tlc::tlc_access_schema();
    println!(
        "\naccess schema ({} constraints):\n{}",
        access_schema.len(),
        access_schema
    );
    let system = BeasSystem::with_schema(db, access_schema)?;

    // 3. Check bounded evaluability of Example 2's query and show the plan.
    let (btype, region, pid, date) = beas::tlc::default_params();
    let q1 = beas::tlc::example2_query(btype, region, pid, date);
    let report = system.check(&q1)?;
    println!("\nQ1 covered: {}", report.covered);
    println!("deduced bound: {:?} tuples", report.deduced_bound);
    println!("\nbounded plan:\n{}", system.explain(&q1)?);

    // 4. Budget check without executing the query (demo scenario 1(a)).
    for budget in [10_000u64, 50_000_000] {
        println!(
            "can answer Q1 within {budget} tuples: {}",
            system.can_answer_within(&q1, budget)?
        );
    }

    // 5. Execute through BEAS and compare with the conventional engine.
    let outcome = system.execute_sql(&q1)?;
    println!(
        "\nBEAS: {} answers, bounded = {}, tuples accessed = {}",
        outcome.rows.len(),
        outcome.bounded,
        outcome.tuples_accessed
    );
    let engine = Engine::new(OptimizerProfile::PgLike);
    let baseline = engine.run(system.database(), &q1)?;
    println!(
        "baseline (pg-like): {} answers, tuples accessed = {}",
        baseline.rows.len(),
        baseline.metrics.total_tuples_accessed()
    );
    println!(
        "\nanswers:\n{}",
        beas::common::tuple::render_rows(
            &outcome
                .schema
                .fields()
                .iter()
                .map(|f| f.name.clone())
                .collect::<Vec<_>>(),
            &outcome.rows
        )
    );
    Ok(())
}
